//! Serving-layer benchmark: coalesced mega-batches versus
//! one-request-one-kernel.
//!
//! Many concurrent clients submit small scan requests in a closed
//! loop through the `scan-service` front door, in two configurations
//! of the *same* service:
//!
//! - **coalesced** — the production configuration: windows close into
//!   one segmented-scan mega-batch per ~batch of requests (§2.3 of
//!   the paper: segment flags let one scan serve them all);
//! - **naive** — `ServiceConfig::uncoalesced()`: batch capacity 1, so
//!   every request pays its own dispatch (one request, one kernel).
//!
//! Both configurations are measured against two backends:
//!
//! - **launch** (the headline regime) — the paper's machine model. A
//!   scan is a *primitive operation of the parallel machine*: every
//!   kernel occupies the whole device for a fixed launch-plus-drain
//!   overhead ([`LAUNCH_OVERHEAD`]) before its elements flow, and the
//!   device command queue is serial — one kernel at a time, like any
//!   real accelerator stream. `LaunchModeled` wraps the production
//!   [`PoolBackend`] with exactly that: a device mutex and a timed
//!   launch spin. Under this model the economics are visible: naive
//!   pays one launch per request, coalesced one launch per batch.
//! - **inline** (context) — the raw host backend with no device
//!   model. On a host where a 64-element scan inlines to ~100 ns,
//!   kernel launches are free and there is *nothing to amortize*; a
//!   coalescing front door can only add wakeup overhead. These rows
//!   are reported so that the cost of the front door itself is
//!   honest and visible, not hidden inside the device model.
//!
//! A third **direct** row (clients calling the engine with no service
//! at all) bounds the front door's own overhead from below.
//!
//! Results go to `BENCH_service.json` at the repo root. The headline
//! acceptance number is `coalesced_vs_naive` in the launch regime at
//! ≥ 64 concurrent clients, which must be ≥ 3.
//!
//! Usage:
//!   cargo run --release -p scan-bench --bin bench_service
//!   cargo run --release -p scan-bench --bin bench_service -- --smoke
//!   cargo run --release -p scan-bench --bin bench_service -- --out path.json

use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use scan_core::segmented::Segments;
use scan_core::{ScanDeadline, Sum};
use scan_service::{
    BatchBackend, PoolBackend, RequestOp, ScanKind, ScanRequest, ScanService, ServiceConfig,
    TenantId,
};

/// Per-kernel launch-plus-drain overhead of the modeled device, the
/// fixed cost a coalesced batch amortizes. 30 µs is a conventional
/// synchronous launch-and-sync round trip for a discrete accelerator;
/// the figure is recorded in the JSON so the regime is reproducible.
const LAUNCH_OVERHEAD: Duration = Duration::from_micros(30);

/// The paper's machine model wrapped around the production backend:
/// a serial device command queue and a fixed per-kernel launch cost.
/// Results still come from the real `PoolBackend` kernels, so every
/// response stays exact and the service's self-verification is live.
struct LaunchModeled {
    inner: PoolBackend,
    /// The device: a serially reusable resource, one kernel at a time.
    device: Mutex<()>,
    launch: Duration,
}

impl LaunchModeled {
    fn new(launch: Duration) -> Self {
        Self {
            inner: PoolBackend,
            device: Mutex::new(()),
            launch,
        }
    }

    fn hold_device(&self) -> std::sync::MutexGuard<'_, ()> {
        let guard = self.device.lock().expect("device mutex poisoned");
        // Synchronous launch: the host spins for the launch round trip
        // while the device is held (timed spin, not sleep, so the cost
        // is exact and unaffected by timer slack).
        let t0 = Instant::now();
        while t0.elapsed() < self.launch {
            std::hint::spin_loop();
        }
        guard
    }
}

impl BatchBackend for LaunchModeled {
    fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        let _device = self.hold_device();
        self.inner.seg_scan(kind, values, segs, deadline)
    }

    fn scan_one(
        &self,
        kind: ScanKind,
        values: &[u64],
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        let _device = self.hold_device();
        self.inner.scan_one(kind, values, deadline)
    }
}

/// One measured cell.
struct Row {
    regime: &'static str,
    scenario: &'static str,
    clients: usize,
    len: usize,
    requests: u64,
    total_ns: u128,
    occupancy: f64,
}

impl Row {
    fn ns_per_req(&self) -> f64 {
        self.total_ns as f64 / self.requests.max(1) as f64
    }
    fn req_per_sec(&self) -> f64 {
        self.requests as f64 * 1e9 / (self.total_ns.max(1) as f64)
    }
}

/// Deterministic request payload.
fn payload(client: u64, i: u64, len: usize) -> Vec<u64> {
    (0..len as u64).map(|j| client * 7919 + i * 13 + j).collect()
}

/// Closed-loop storm through a service: `clients` threads each submit
/// `per_client` +-scans of `len` elements. Returns (wall ns, mean
/// batch occupancy).
fn run_service<B: BatchBackend + 'static>(
    svc: ScanService<B>,
    clients: usize,
    per_client: u64,
    len: usize,
) -> (u128, f64) {
    let svc = Arc::new(svc);
    let gate = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients as u64)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                // Correctness spot-check outside the hot loop's
                // critical claim: first response checked exactly (the
                // service additionally self-verifies every segment).
                let first = payload(c, 0, len);
                let want = scan_core::scan::<Sum, _>(&first);
                gate.wait();
                for i in 0..per_client {
                    let vals = payload(c, i, len);
                    let got = svc
                        .submit(ScanRequest::new(TenantId(c % 8), RequestOp::PlusScan(vals)))
                        .expect("bench request failed");
                    if i == 0 {
                        assert_eq!(got, want, "client {c} got a wrong first response");
                    }
                }
            })
        })
        .collect();
    // Clock starts before the barrier releases: on a small machine
    // the clients can otherwise run to completion before this thread
    // is rescheduled, under-measuring the storm.
    let t0 = Instant::now();
    gate.wait();
    for h in handles {
        h.join().expect("bench client panicked");
    }
    let ns = t0.elapsed().as_nanos();
    let h = svc.health();
    assert!(h.is_drained(), "service not drained after bench: {h:?}");
    assert_eq!(h.failed, 0, "bench requests failed: {h:?}");
    (ns, h.mean_batch_occupancy().unwrap_or(1.0))
}

/// Context row: the same closed loop calling the engine directly.
fn run_direct(clients: usize, per_client: u64, len: usize) -> u128 {
    let gate = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients as u64)
        .map(|c| {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                gate.wait();
                for i in 0..per_client {
                    let vals = payload(c, i, len);
                    std::hint::black_box(scan_core::scan::<Sum, _>(&vals));
                }
            })
        })
        .collect();
    let t0 = Instant::now();
    gate.wait();
    for h in handles {
        h.join().expect("direct client panicked");
    }
    t0.elapsed().as_nanos()
}

/// The production-shaped coalescing configuration for `clients`
/// concurrent submitters.
fn coalesced_cfg(clients: usize) -> ServiceConfig {
    ServiceConfig {
        close_target: (clients / 2).max(8),
        batch_capacity: 1024,
        window: Duration::from_micros(200),
        ..ServiceConfig::default()
    }
}

/// Measure one (regime, clients, len) cell: coalesced and naive rows.
fn run_cell(
    rows: &mut Vec<Row>,
    regime: &'static str,
    launch: Option<Duration>,
    clients: usize,
    per_client: u64,
    len: usize,
) {
    let requests = clients as u64 * per_client;
    let make = |cfg: ServiceConfig| -> (u128, f64) {
        match launch {
            Some(t) => run_service(
                ScanService::with_backend(cfg, LaunchModeled::new(t)),
                clients,
                per_client,
                len,
            ),
            None => run_service(ScanService::new(cfg), clients, per_client, len),
        }
    };

    let (coal_ns, occupancy) = make(coalesced_cfg(clients));
    rows.push(Row {
        regime,
        scenario: "coalesced",
        clients,
        len,
        requests,
        total_ns: coal_ns,
        occupancy,
    });
    let (naive_ns, _) = make(ServiceConfig::uncoalesced());
    rows.push(Row {
        regime,
        scenario: "naive",
        clients,
        len,
        requests,
        total_ns: naive_ns,
        occupancy: 1.0,
    });
    println!(
        "{regime:>6} clients={clients:>4} len={len:>5}: coalesced {:>9.0} req/s (occ {:>5.1}), naive {:>9.0} req/s, ratio {:>5.2}x",
        rows[rows.len() - 2].req_per_sec(),
        occupancy,
        rows[rows.len() - 1].req_per_sec(),
        naive_ns as f64 / coal_ns.max(1) as f64,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));

    let threads = scan_core::pool::global().threads();
    println!(
        "service bench: pool width {threads}, launch overhead {}us, smoke={smoke}",
        LAUNCH_OVERHEAD.as_micros()
    );

    // The launch regime sticks to genuinely small requests (the
    // workload coalescing is for); the inline regime adds larger
    // payloads to show where per-element work swamps the front door.
    let per_client: u64 = if smoke { 50 } else { 400 };
    let launch_combos: Vec<(usize, usize)> = if smoke {
        vec![(8, 64)]
    } else {
        vec![(16, 64), (64, 64), (64, 256), (128, 256)]
    };
    let inline_combos: Vec<(usize, usize)> = if smoke {
        vec![(8, 64)]
    } else {
        vec![(16, 64), (64, 64), (64, 256), (64, 1024), (128, 256)]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &(clients, len) in &launch_combos {
        run_cell(
            &mut rows,
            "launch",
            Some(LAUNCH_OVERHEAD),
            clients,
            per_client,
            len,
        );
    }
    for &(clients, len) in &inline_combos {
        run_cell(&mut rows, "inline", None, clients, per_client, len);
        let direct_ns = run_direct(clients, per_client, len);
        rows.push(Row {
            regime: "inline",
            scenario: "direct",
            clients,
            len,
            requests: clients as u64 * per_client,
            total_ns: direct_ns,
            occupancy: 1.0,
        });
    }

    if smoke {
        println!("smoke mode: correctness verified, no JSON written");
        return;
    }

    // Headline ratio: worst coalesced-vs-naive ratio in the machine
    // model over the ≥64-client combos — acceptance wants ≥ 3.
    let mut headline = f64::INFINITY;
    for &(clients, len) in &launch_combos {
        if clients < 64 {
            continue;
        }
        let pick = |scenario: &str| {
            rows.iter()
                .find(|r| {
                    r.regime == "launch"
                        && r.scenario == scenario
                        && r.clients == clients
                        && r.len == len
                })
                .map(Row::req_per_sec)
        };
        if let (Some(coal), Some(naive)) = (pick("coalesced"), pick("naive")) {
            headline = headline.min(coal / naive);
        }
    }
    println!("headline coalesced_vs_naive (launch regime, worst at >=64 clients): {headline:.2}x");

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"launch_model\": {{\"launch_overhead_us\": {}, \"serial_device_queue\": true}},\n",
        LAUNCH_OVERHEAD.as_micros()
    ));
    json.push_str(&format!(
        "  \"coalesced_vs_naive_min_at_64_clients\": {headline:.3},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"regime\": \"{}\", \"scenario\": \"{}\", \"clients\": {}, \"len\": {}, \"requests\": {}, \"total_ns\": {}, \"ns_per_request\": {:.1}, \"req_per_sec\": {:.1}, \"mean_batch_occupancy\": {:.2}}}{}\n",
            r.regime,
            r.scenario,
            r.clients,
            r.len,
            r.requests,
            r.total_ns,
            r.ns_per_req(),
            r.req_per_sec(),
            r.occupancy,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_service.json");
    println!("wrote {out_path}");
}
