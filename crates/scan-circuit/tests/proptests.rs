//! Property tests: the cycle-accurate circuit must agree with the
//! word-level scan for arbitrary inputs, widths and tree sizes, and its
//! cycle count must match the paper's pipeline bound.

use proptest::prelude::*;
use scan_circuit::{tree_scan_trace, OpKind, TreeScanCircuit};

fn ref_scan(op: OpKind, values: &[u64], m: u32) -> Vec<u64> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u64;
    for &v in values {
        out.push(acc);
        acc = op.apply(acc, v, m);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn circuit_plus_scan_matches_reference(
        lg_n in 0u32..7,
        m in 1u32..33,
        seed in any::<u64>(),
    ) {
        let n = 1usize << lg_n;
        let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        let mut state = seed | 1;
        let values: Vec<u64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 16) & mask
        }).collect();
        let mut c = TreeScanCircuit::new(n);
        let run = c.scan(OpKind::Plus, &values, m);
        prop_assert_eq!(&run.values, &ref_scan(OpKind::Plus, &values, m));
        // Pipeline bound: measured latency is m + 2 lg n − 1 ≤ m + 2 lg n.
        prop_assert!(run.cycles <= c.cycle_bound(m));
        if n > 1 {
            prop_assert_eq!(run.cycles, m as u64 + 2 * lg_n as u64 - 1);
        }
    }

    #[test]
    fn circuit_max_scan_matches_reference(
        lg_n in 0u32..7,
        m in 1u32..33,
        seed in any::<u64>(),
    ) {
        let n = 1usize << lg_n;
        let mask = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        let mut state = seed | 1;
        let values: Vec<u64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99991);
            (state >> 16) & mask
        }).collect();
        let mut c = TreeScanCircuit::new(n);
        let run = c.scan(OpKind::Max, &values, m);
        prop_assert_eq!(&run.values, &ref_scan(OpKind::Max, &values, m));
    }

    #[test]
    fn trace_matches_circuit(lg_n in 0u32..6, seed in any::<u64>()) {
        let n = 1usize << lg_n;
        let mut state = seed | 1;
        let values: Vec<u64> = (0..n).map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 40) & 0xFFFF
        }).collect();
        for op in [OpKind::Plus, OpKind::Max] {
            let trace = tree_scan_trace(op, &values, 16);
            let mut c = TreeScanCircuit::new(n);
            prop_assert_eq!(&trace.result, &c.scan(op, &values, 16).values);
        }
    }
}
