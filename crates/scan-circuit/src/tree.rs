//! The balanced binary tree of units, clocked cycle by cycle
//! (§3.1–§3.2, Figures 13 and 14).
//!
//! Operands enter the leaves one bit per clock (least-significant first
//! for `+-scan`, most-significant first for `max-scan`). Each unit
//! combines its children's bit streams with one [`SumStateMachine`],
//! stores the left child's stream in a [`ShiftRegister`] of length `2i`
//! (`i` = depth below the root), and on the way down combines the
//! parent's stream with the stored one using a second state machine.
//! The root's parent input is tied low, and because its shift register
//! has length 0 "the values ... are automatically reflected back down".
//!
//! After `m + 2 lg n - 1` clocks the exclusive scan has been delivered,
//! bit-serially, to all `n` leaves — the paper's `m + 2 lg n` pipeline
//! bound.

pub use crate::unit::OpKind;
use crate::unit::{ShiftRegister, SumStateMachine};

/// One internal node of the tree (Figure 14): two sum state machines, a
/// variable-length shift register, and the registered output wires.
#[derive(Debug, Clone)]
struct Unit {
    up_sm: SumStateMachine,
    down_sm: SumStateMachine,
    fifo: ShiftRegister,
    /// Registered single-bit wire toward the parent.
    up_out: bool,
    /// Registered single-bit wire toward the left child.
    left_out: bool,
    /// Registered single-bit wire toward the right child.
    right_out: bool,
}

impl Unit {
    fn new(depth: usize) -> Self {
        Unit {
            up_sm: SumStateMachine::new(),
            down_sm: SumStateMachine::new(),
            fifo: ShiftRegister::new(2 * depth),
            up_out: false,
            left_out: false,
            right_out: false,
        }
    }

    fn clear(&mut self) {
        self.up_sm.clear();
        self.down_sm.clear();
        self.fifo.clear();
        self.up_out = false;
        self.left_out = false;
        self.right_out = false;
    }
}

/// The result of one scan executed on the simulated hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitRun {
    /// The exclusive scan delivered at the leaves.
    pub values: Vec<u64>,
    /// Clock cycles from first operand bit in to last result bit out.
    pub cycles: u64,
}

/// A single bit of state or wiring inside one tree unit — the places a
/// transient upset (bit flip) can land. Units are named by their heap
/// index (`1` = root, unit `k` has children `2k`/`2k+1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// State bit `Q1` of the up-sweep sum state machine.
    UpQ1(usize),
    /// State bit `Q2` of the up-sweep sum state machine.
    UpQ2(usize),
    /// State bit `Q1` of the down-sweep sum state machine.
    DownQ1(usize),
    /// State bit `Q2` of the down-sweep sum state machine.
    DownQ2(usize),
    /// One cell of the unit's variable-length shift register; the
    /// second field is the cell's age (0 = next bit shifted out).
    FifoBit(usize, usize),
    /// The registered single-bit wire toward the parent.
    UpWire(usize),
    /// The registered single-bit wire toward the left child.
    LeftWire(usize),
    /// The registered single-bit wire toward the right child.
    RightWire(usize),
}

impl FaultSite {
    /// The heap index of the unit this site lives in.
    pub fn unit(self) -> usize {
        match self {
            FaultSite::UpQ1(k)
            | FaultSite::UpQ2(k)
            | FaultSite::DownQ1(k)
            | FaultSite::DownQ2(k)
            | FaultSite::FifoBit(k, _)
            | FaultSite::UpWire(k)
            | FaultSite::LeftWire(k)
            | FaultSite::RightWire(k) => k,
        }
    }
}

/// One transient fault: flip `site` immediately before clock cycle
/// `cycle` of a scan (cycle 0 is the cycle the first operand bit
/// enters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitFault {
    /// Clock cycle at which the upset occurs.
    pub cycle: u64,
    /// The bit that flips.
    pub site: FaultSite,
}

/// A cycle-accurate simulation of the scan tree over `n` leaves
/// (`n` a power of two; shorter inputs are padded with the identity).
#[derive(Debug, Clone)]
pub struct TreeScanCircuit {
    n_leaves: usize,
    levels: u32,
    /// Units in heap order: index 1 is the root; unit `k` has children
    /// `2k`/`2k+1` (units) or leaves `2k - n`/`2k - n + 1`.
    units: Vec<Unit>,
}

impl TreeScanCircuit {
    /// Build a circuit for `n_leaves` inputs.
    ///
    /// # Panics
    /// If `n_leaves` is zero or not a power of two.
    pub fn new(n_leaves: usize) -> Self {
        assert!(n_leaves > 0, "circuit needs at least one leaf");
        assert!(
            n_leaves.is_power_of_two(),
            "the balanced tree needs a power-of-two leaf count; pad with the identity"
        );
        let levels = n_leaves.trailing_zeros();
        let mut units = Vec::with_capacity(n_leaves);
        // Slot 0 unused; unit k at depth floor(lg k).
        units.push(Unit::new(0));
        for k in 1..n_leaves {
            let depth = (usize::BITS - 1 - k.leading_zeros()) as usize;
            units.push(Unit::new(depth));
        }
        TreeScanCircuit {
            n_leaves,
            levels,
            units,
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Tree depth in unit levels (`lg n`).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Assert the `Clear` line: reset every state machine, register and
    /// wire.
    pub fn clear(&mut self) {
        for u in &mut self.units[1..] {
            u.clear();
        }
    }

    /// Advance one clock. `leaf_in[p]` is the bit each leaf presents
    /// this cycle; returns the bit each leaf reads from its down wire.
    fn clock(&mut self, op: OpKind, leaf_in: &[bool]) -> Vec<bool> {
        let n = self.n_leaves;
        if n == 1 {
            // No units: a single processor's exclusive scan is the
            // identity stream.
            return vec![false];
        }
        // Phase 1: sample every input from the *current* registered
        // outputs (synchronous logic).
        let mut a_in = vec![false; n];
        let mut b_in = vec![false; n];
        let mut d_in = vec![false; n];
        for k in 1..n {
            let (a, b) = if 2 * k >= n {
                (leaf_in[2 * k - n], leaf_in[2 * k - n + 1])
            } else {
                (self.units[2 * k].up_out, self.units[2 * k + 1].up_out)
            };
            a_in[k] = a;
            b_in[k] = b;
            d_in[k] = if k == 1 {
                false // the root's parent input is tied low
            } else if k % 2 == 0 {
                self.units[k / 2].left_out
            } else {
                self.units[k / 2].right_out
            };
        }
        // Leaves read the *current* outputs of their parent units.
        let leaf_out: Vec<bool> = (0..n)
            .map(|p| {
                let parent = (n + p) / 2;
                if p % 2 == 0 {
                    self.units[parent].left_out
                } else {
                    self.units[parent].right_out
                }
            })
            .collect();
        // Phase 2: commit every register.
        for k in 1..n {
            let (a, b, d) = (a_in[k], b_in[k], d_in[k]);
            let u = &mut self.units[k];
            u.up_out = u.up_sm.step(op, a, b);
            let f = u.fifo.shift(a);
            u.left_out = d;
            u.right_out = u.down_sm.step(op, d, f);
        }
        leaf_out
    }

    /// Execute one scan: feed the `m_bits`-wide `values` through the
    /// tree bit-serially and collect the exclusive scan at the leaves.
    ///
    /// Values are padded with the identity up to the leaf count. For
    /// `Plus` the result is taken modulo `2^m_bits` (the machine
    /// operates on `m`-bit fields).
    ///
    /// # Panics
    /// If more values than leaves are supplied, a value does not fit in
    /// `m_bits`, or `m_bits` is 0 or exceeds 64.
    pub fn scan(&mut self, op: OpKind, values: &[u64], m_bits: u32) -> CircuitRun {
        assert!((1..=64).contains(&m_bits), "field width must be 1..=64");
        assert!(
            values.len() <= self.n_leaves,
            "{} values exceed {} leaves",
            values.len(),
            self.n_leaves
        );
        let mask = if m_bits == 64 {
            u64::MAX
        } else {
            (1u64 << m_bits) - 1
        };
        for &v in values {
            assert!(v & !mask == 0, "value {v} does not fit in {m_bits} bits");
        }
        self.scan_with_faults(op, values, m_bits, &[]).0
    }

    /// Non-panicking construction: every [`TreeScanCircuit::new`] panic
    /// becomes a typed error.
    pub fn try_new(n_leaves: usize) -> scan_core::Result<Self> {
        if n_leaves == 0 {
            return Err(scan_core::Error::EmptyInput { op: "tree circuit" });
        }
        if !n_leaves.is_power_of_two() {
            return Err(scan_core::Error::LengthMismatch {
                expected: n_leaves.next_power_of_two(),
                actual: n_leaves,
            });
        }
        Ok(Self::new(n_leaves))
    }

    /// Non-panicking variant of [`TreeScanCircuit::scan`]: every
    /// precondition failure becomes a typed error instead of a panic.
    pub fn try_scan(
        &mut self,
        op: OpKind,
        values: &[u64],
        m_bits: u32,
    ) -> scan_core::Result<CircuitRun> {
        if !(1..=64).contains(&m_bits) {
            return Err(scan_core::Error::WidthOverflow {
                required: m_bits.max(1),
                available: 64,
            });
        }
        if values.len() > self.n_leaves {
            return Err(scan_core::Error::LengthMismatch {
                expected: self.n_leaves,
                actual: values.len(),
            });
        }
        let mask = if m_bits == 64 {
            u64::MAX
        } else {
            (1u64 << m_bits) - 1
        };
        for &v in values {
            if v & !mask != 0 {
                return Err(scan_core::Error::WidthOverflow {
                    required: 64 - v.leading_zeros(),
                    available: m_bits,
                });
            }
        }
        Ok(self.scan_with_faults(op, values, m_bits, &[]).0)
    }

    /// Flip one bit of circuit state right now. Returns `true` when the
    /// flip landed on real state; `false` when the site does not exist
    /// in this circuit (unit index out of range, fifo cell beyond the
    /// register length, or any site on a single-leaf circuit) — such a
    /// fault is vacuously masked.
    pub fn apply_fault(&mut self, site: FaultSite) -> bool {
        let k = site.unit();
        if k == 0 || k >= self.units.len() {
            return false;
        }
        let u = &mut self.units[k];
        match site {
            FaultSite::UpQ1(_) => u.up_sm.flip_q1(),
            FaultSite::UpQ2(_) => u.up_sm.flip_q2(),
            FaultSite::DownQ1(_) => u.down_sm.flip_q1(),
            FaultSite::DownQ2(_) => u.down_sm.flip_q2(),
            FaultSite::FifoBit(_, age) => {
                if age >= u.fifo.len() {
                    return false;
                }
                u.fifo.flip_bit(age);
            }
            FaultSite::UpWire(_) => u.up_out = !u.up_out,
            FaultSite::LeftWire(_) => u.left_out = !u.left_out,
            FaultSite::RightWire(_) => u.right_out = !u.right_out,
        }
        true
    }

    /// Every distinct bit of state and registered wiring in the circuit
    /// — the complete fault universe for exhaustive or sampled
    /// injection campaigns.
    pub fn fault_sites(&self) -> Vec<FaultSite> {
        let mut sites = Vec::new();
        for k in 1..self.units.len() {
            sites.push(FaultSite::UpQ1(k));
            sites.push(FaultSite::UpQ2(k));
            sites.push(FaultSite::DownQ1(k));
            sites.push(FaultSite::DownQ2(k));
            for age in 0..self.units[k].fifo.len() {
                sites.push(FaultSite::FifoBit(k, age));
            }
            sites.push(FaultSite::UpWire(k));
            sites.push(FaultSite::LeftWire(k));
            sites.push(FaultSite::RightWire(k));
        }
        sites
    }

    /// Execute one scan while injecting transient faults: each fault
    /// flips its site immediately before its clock cycle executes.
    /// Returns the (possibly corrupted) run and the number of flips
    /// that landed on real state (faults scheduled past the run's last
    /// cycle or at nonexistent sites are dropped).
    ///
    /// Preconditions are the same as [`TreeScanCircuit::scan`] and are
    /// **not** re-checked here; call through `scan`/`try_scan` first or
    /// uphold them at the call site.
    pub fn scan_with_faults(
        &mut self,
        op: OpKind,
        values: &[u64],
        m_bits: u32,
        faults: &[CircuitFault],
    ) -> (CircuitRun, usize) {
        self.clear();
        let n = self.n_leaves;
        let m = m_bits as u64;
        // Result bit k reaches the leaves 2·levels - 1 cycles after the
        // operand bit k enters (one register per unit, up and down).
        let latency = if n == 1 { 0 } else { 2 * self.levels as u64 - 1 };
        let total_cycles = m + latency;
        let mut out = vec![0u64; n];
        let mut applied = 0usize;
        for t in 0..total_cycles {
            for fault in faults.iter().filter(|fl| fl.cycle == t) {
                if self.apply_fault(fault.site) {
                    applied += 1;
                }
            }
            // Operand bit index entering this cycle (identity bits after
            // the operand is exhausted).
            let leaf_in: Vec<bool> = (0..n)
                .map(|p| {
                    if t >= m {
                        return false;
                    }
                    let v = values.get(p).copied().unwrap_or(0);
                    let bit_index = match op {
                        OpKind::Plus => t,               // LSB first
                        OpKind::Max => m - 1 - t,        // MSB first
                    };
                    (v >> bit_index) & 1 == 1
                })
                .collect();
            let leaf_out = self.clock(op, &leaf_in);
            // Result bit index leaving this cycle.
            if t >= latency {
                let k = t - latency;
                let bit_index = match op {
                    OpKind::Plus => k,
                    OpKind::Max => m - 1 - k,
                };
                for (p, &bit) in leaf_out.iter().enumerate() {
                    if bit {
                        out[p] |= 1 << bit_index;
                    }
                }
            }
        }
        out.truncate(values.len());
        (
            CircuitRun {
                values: out,
                cycles: total_cycles,
            },
            applied,
        )
    }

    /// The paper's pipeline bound for this circuit: `m + 2 lg n` cycles.
    pub fn cycle_bound(&self, m_bits: u32) -> u64 {
        m_bits as u64 + 2 * self.levels as u64
    }
}

/// A word-level trace of the two-sweep tree algorithm of §3.1 and
/// Figure 13, for inspection and for checking the bit-serial circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeScanTrace {
    /// Per-unit value stored on the up sweep ("a copy of the value from
    /// the left child"), heap order, slot 0 unused.
    pub stored_left: Vec<u64>,
    /// Per-unit value passed up ("⊕ on its two children units").
    pub up_value: Vec<u64>,
    /// Per-unit value received on the down sweep.
    pub down_value: Vec<u64>,
    /// The exclusive scan at the leaves.
    pub result: Vec<u64>,
    /// Word-level steps: `2 lg n` (up sweep + down sweep).
    pub steps: u64,
}

/// Run the word-level two-sweep tree scan (Figure 13). `values.len()`
/// must be a power of two.
pub fn tree_scan_trace(op: OpKind, values: &[u64], m_bits: u32) -> TreeScanTrace {
    let n = values.len();
    assert!(n.is_power_of_two() && n >= 1, "need a power-of-two input");
    let levels = n.trailing_zeros() as u64;
    let mut stored_left = vec![0u64; n.max(2)];
    let mut up_value = vec![0u64; n.max(2)];
    let mut down_value = vec![0u64; n.max(2)];
    if n == 1 {
        return TreeScanTrace {
            stored_left,
            up_value,
            down_value,
            result: vec![op.identity()],
            steps: 0,
        };
    }
    // Up sweep, deepest units first.
    for k in (1..n).rev() {
        let (a, b) = if 2 * k >= n {
            (values[2 * k - n], values[2 * k - n + 1])
        } else {
            (up_value[2 * k], up_value[2 * k + 1])
        };
        stored_left[k] = a;
        up_value[k] = op.apply(a, b, m_bits);
    }
    // Down sweep from the root.
    down_value[1] = op.identity();
    let mut result = vec![0u64; n];
    for k in 1..n {
        let left_down = down_value[k];
        let right_down = op.apply(down_value[k], stored_left[k], m_bits);
        if 2 * k >= n {
            result[2 * k - n] = left_down;
            result[2 * k - n + 1] = right_down;
        } else {
            down_value[2 * k] = left_down;
            down_value[2 * k + 1] = right_down;
        }
    }
    TreeScanTrace {
        stored_left,
        up_value,
        down_value,
        result,
        steps: 2 * levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_scan(op: OpKind, values: &[u64], m: u32) -> Vec<u64> {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = op.identity();
        for &v in values {
            out.push(acc);
            acc = op.apply(acc, v, m);
        }
        out
    }

    #[test]
    fn figure13_style_plus_scan_on_8() {
        let values = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let mut c = TreeScanCircuit::new(8);
        let run = c.scan(OpKind::Plus, &values, 8);
        assert_eq!(run.values, ref_scan(OpKind::Plus, &values, 8));
        // m + 2 lg n - 1 = 8 + 6 - 1
        assert_eq!(run.cycles, 13);
        assert!(run.cycles <= c.cycle_bound(8));
    }

    #[test]
    fn max_scan_on_8() {
        let values = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let mut c = TreeScanCircuit::new(8);
        let run = c.scan(OpKind::Max, &values, 8);
        assert_eq!(run.values, vec![0, 5, 5, 5, 5, 5, 9, 9]);
    }

    #[test]
    fn single_leaf() {
        let mut c = TreeScanCircuit::new(1);
        let run = c.scan(OpKind::Plus, &[42], 8);
        assert_eq!(run.values, vec![0]);
        assert_eq!(run.cycles, 8);
    }

    #[test]
    fn two_leaves() {
        let mut c = TreeScanCircuit::new(2);
        let run = c.scan(OpKind::Plus, &[200, 100], 8);
        assert_eq!(run.values, vec![0, 200]);
        assert_eq!(run.cycles, 9); // m + 2·1 - 1
    }

    #[test]
    fn plus_scan_wraps_to_field_width() {
        let mut c = TreeScanCircuit::new(4);
        // 200 + 100 = 300 ≡ 44 (mod 256)
        let run = c.scan(OpKind::Plus, &[200, 100, 1, 1], 8);
        assert_eq!(run.values, vec![0, 200, 44, 45]);
    }

    #[test]
    fn padding_with_identity() {
        let mut c = TreeScanCircuit::new(8);
        let run = c.scan(OpKind::Plus, &[1, 2, 3], 8);
        assert_eq!(run.values, vec![0, 1, 3]);
    }

    #[test]
    fn circuit_matches_reference_across_sizes_and_widths() {
        let mut x = 7u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 32
        };
        for lg_n in [1u32, 2, 3, 4, 6, 8] {
            let n = 1usize << lg_n;
            for m in [1u32, 3, 8, 16, 32] {
                let mask = if m == 64 { u64::MAX } else { (1 << m) - 1 };
                let values: Vec<u64> = (0..n).map(|_| rng() & mask).collect();
                let mut c = TreeScanCircuit::new(n);
                for op in [OpKind::Plus, OpKind::Max] {
                    let run = c.scan(op, &values, m);
                    assert_eq!(
                        run.values,
                        ref_scan(op, &values, m),
                        "op={op:?} n={n} m={m}"
                    );
                    assert_eq!(run.cycles, m as u64 + 2 * lg_n as u64 - 1);
                }
            }
        }
    }

    #[test]
    fn circuit_reusable_across_runs() {
        let mut c = TreeScanCircuit::new(4);
        let r1 = c.scan(OpKind::Plus, &[1, 2, 3, 4], 8);
        let r2 = c.scan(OpKind::Max, &[4, 3, 2, 1], 8);
        let r3 = c.scan(OpKind::Plus, &[1, 2, 3, 4], 8);
        assert_eq!(r1.values, vec![0, 1, 3, 6]);
        assert_eq!(r2.values, vec![0, 4, 4, 4]);
        assert_eq!(r1, r3, "state fully cleared between runs");
    }

    #[test]
    fn sixty_four_bit_fields() {
        let values = [u64::MAX, 1, u64::MAX / 2, 0];
        let mut c = TreeScanCircuit::new(4);
        let run = c.scan(OpKind::Plus, &values, 64);
        assert_eq!(run.values, ref_scan(OpKind::Plus, &values, 64));
        let run = c.scan(OpKind::Max, &values, 64);
        assert_eq!(run.values, ref_scan(OpKind::Max, &values, 64));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        TreeScanCircuit::new(6);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        TreeScanCircuit::new(2).scan(OpKind::Plus, &[256, 0], 8);
    }

    #[test]
    fn word_level_trace_matches_circuit() {
        let values = [3u64, 1, 7, 0, 4, 1, 6, 3];
        let trace = tree_scan_trace(OpKind::Plus, &values, 8);
        let mut c = TreeScanCircuit::new(8);
        let run = c.scan(OpKind::Plus, &values, 8);
        assert_eq!(trace.result, run.values);
        assert_eq!(trace.steps, 6); // 2 lg 8
        // Root stores the left subtree's sum and passes up the total.
        assert_eq!(trace.stored_left[1], 11);
        assert_eq!(trace.up_value[1], 25);
    }

    #[test]
    fn trace_single_element() {
        let t = tree_scan_trace(OpKind::Max, &[9], 8);
        assert_eq!(t.result, vec![0]);
        assert_eq!(t.steps, 0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            TreeScanCircuit::try_new(0).unwrap_err(),
            scan_core::Error::EmptyInput { op: "tree circuit" }
        );
        assert_eq!(
            TreeScanCircuit::try_new(6).unwrap_err(),
            scan_core::Error::LengthMismatch {
                expected: 8,
                actual: 6
            }
        );
        assert!(TreeScanCircuit::try_new(8).is_ok());
    }

    #[test]
    fn try_scan_reports_typed_errors() {
        let mut c = TreeScanCircuit::new(4);
        assert_eq!(
            c.try_scan(OpKind::Plus, &[1], 0).unwrap_err(),
            scan_core::Error::WidthOverflow {
                required: 1,
                available: 64
            }
        );
        assert_eq!(
            c.try_scan(OpKind::Plus, &[1; 5], 8).unwrap_err(),
            scan_core::Error::LengthMismatch {
                expected: 4,
                actual: 5
            }
        );
        assert_eq!(
            c.try_scan(OpKind::Plus, &[256, 0], 8).unwrap_err(),
            scan_core::Error::WidthOverflow {
                required: 9,
                available: 8
            }
        );
        let run = c.try_scan(OpKind::Plus, &[1, 2, 3, 4], 8).unwrap();
        assert_eq!(run.values, vec![0, 1, 3, 6]);
    }

    #[test]
    fn empty_fault_list_matches_plain_scan() {
        let values = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let mut c = TreeScanCircuit::new(8);
        let plain = c.scan(OpKind::Plus, &values, 8);
        let (faulted, applied) = c.scan_with_faults(OpKind::Plus, &values, 8, &[]);
        assert_eq!(plain, faulted);
        assert_eq!(applied, 0);
    }

    #[test]
    fn fault_site_universe_covers_every_unit() {
        let c = TreeScanCircuit::new(8);
        let sites = c.fault_sites();
        // 7 units × (4 state bits + 3 wires) + fifo cells (2·depth per
        // unit: 0 + 2·2 + 4·4 = 20).
        assert_eq!(sites.len(), 7 * 7 + 20);
        assert!(sites.iter().all(|s| (1..8).contains(&s.unit())));
        // Single-leaf circuit has no units, hence no fault sites.
        assert!(TreeScanCircuit::new(1).fault_sites().is_empty());
    }

    #[test]
    fn nonexistent_sites_are_rejected_as_masked() {
        let mut c = TreeScanCircuit::new(4);
        assert!(!c.apply_fault(FaultSite::UpQ1(0)));
        assert!(!c.apply_fault(FaultSite::UpQ1(99)));
        // Root fifo has length 0: any cell index misses.
        assert!(!c.apply_fault(FaultSite::FifoBit(1, 0)));
        assert!(c.apply_fault(FaultSite::UpQ1(1)));
    }

    #[test]
    fn injected_faults_never_panic_and_are_cleared_between_runs() {
        let values = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let reference = ref_scan(OpKind::Plus, &values, 8);
        let mut c = TreeScanCircuit::new(8);
        let sites = c.fault_sites();
        let mut corrupted = 0usize;
        for (i, &site) in sites.iter().enumerate() {
            let fault = CircuitFault {
                cycle: (i % 13) as u64,
                site,
            };
            let (run, applied) = c.scan_with_faults(OpKind::Plus, &values, 8, &[fault]);
            assert_eq!(applied, 1, "site {site:?} should land");
            assert_eq!(run.values.len(), values.len());
            if run.values != reference {
                corrupted += 1;
            }
            // The fault is transient: the next clean run must recover.
            let clean = c.scan(OpKind::Plus, &values, 8);
            assert_eq!(clean.values, reference, "after fault at {site:?}");
        }
        // Most single-bit upsets in live state corrupt the output.
        assert!(corrupted > sites.len() / 4, "only {corrupted} corrupted");
    }

    #[test]
    fn faults_past_the_last_cycle_are_dropped() {
        let values = [1u64, 2, 3, 4];
        let mut c = TreeScanCircuit::new(4);
        let fault = CircuitFault {
            cycle: 10_000,
            site: FaultSite::UpQ1(1),
        };
        let (run, applied) = c.scan_with_faults(OpKind::Plus, &values, 8, &[fault]);
        assert_eq!(applied, 0);
        assert_eq!(run.values, ref_scan(OpKind::Plus, &values, 8));
    }
}
