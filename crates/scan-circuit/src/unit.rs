//! The building blocks of a tree unit (Figures 14 and 15): the sum
//! state machine and the variable-length shift register.

/// Which primitive the circuit executes — the `Op` control line of
/// Figure 15. "If the signal Op is true, the circuit executes a
/// max-scan. If the signal Op is false, the circuit executes a +-scan."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Serial integer addition; bits are fed **least** significant
    /// first.
    Plus,
    /// Serial integer maximum; bits are fed **most** significant first.
    Max,
}

impl OpKind {
    /// Word-level application of the operator (for checking the bit
    /// serial machines), truncated to `m` bits for `Plus`.
    pub fn apply(self, a: u64, b: u64, m_bits: u32) -> u64 {
        let mask = if m_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << m_bits) - 1
        };
        match self {
            OpKind::Plus => a.wrapping_add(b) & mask,
            OpKind::Max => a.max(b),
        }
    }

    /// The operator's identity.
    pub fn identity(self) -> u64 {
        0
    }
}

/// The sum state machine of Figure 15: three D-type flip-flops (two
/// state bits `Q1`, `Q2` and one registered output bit `S`) plus
/// combinational logic, shared between the two operations.
///
/// For a `+-scan` (Op low) only `Q1` is used, holding the carry of a
/// serial adder; bits stream least-significant first:
/// `S = A ⊕ B ⊕ Q1`, `Q1' = AB + AQ1 + BQ1`.
///
/// For a `max-scan` (Op high) the two state bits track whether the
/// comparison has been decided; bits stream most-significant first:
/// `Q1` set means `A` is greater, `Q2` set means `B` is greater, both
/// clear means equal so far. The output selects the winning stream (or
/// either while equal):
/// `S = A·Q1 + B·Q2 + (A + B)·Q̄1Q̄2`,
/// `Q1' = Q1 + A·B̄·Q̄2`, `Q2' = Q2 + Ā·B·Q̄1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumStateMachine {
    q1: bool,
    q2: bool,
}

impl SumStateMachine {
    /// A cleared machine (the `Clear` control signal of Figure 14).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset both state bits.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Advance one clock: consume one bit from each operand stream and
    /// emit one output bit.
    #[inline]
    pub fn step(&mut self, op: OpKind, a: bool, b: bool) -> bool {
        match op {
            OpKind::Plus => {
                let s = a ^ b ^ self.q1;
                self.q1 = (a & b) | (a & self.q1) | (b & self.q1);
                s
            }
            OpKind::Max => {
                let s = (a & self.q1) | (b & self.q2) | ((a | b) & !self.q1 & !self.q2);
                let q1n = self.q1 | (a & !b & !self.q2);
                let q2n = self.q2 | (!a & b & !self.q1);
                self.q1 = q1n;
                self.q2 = q2n;
                s
            }
        }
    }

    /// Current state bits `(Q1, Q2)` — exposed for the exhaustive logic
    /// tests.
    pub fn state(&self) -> (bool, bool) {
        (self.q1, self.q2)
    }

    /// Fault-injection hook: invert state bit `Q1` — a transient upset
    /// of the flip-flop (carry bit for `Plus`, "A is greater" flag for
    /// `Max`).
    pub fn flip_q1(&mut self) {
        self.q1 = !self.q1;
    }

    /// Fault-injection hook: invert state bit `Q2` (only consulted by
    /// `Max`; flipping it during a `+-scan` is a masked fault).
    pub fn flip_q2(&mut self) {
        self.q2 = !self.q2;
    }
}

/// The variable-length shift register of Figure 14: a first-in
/// first-out buffer shifting one bit per clock. "A unit at level `i`
/// from the top needs a register of length `2i` bits"; length 0 is a
/// combinational passthrough (the root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftRegister {
    bits: Vec<bool>,
    head: usize,
}

impl ShiftRegister {
    /// A register of the given length, initially all zero.
    pub fn new(len: usize) -> Self {
        ShiftRegister {
            bits: vec![false; len],
            head: 0,
        }
    }

    /// The register's length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for the zero-length (passthrough) register.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// One clock: shift `input` in, return the bit shifted out (the bit
    /// inserted `len` clocks ago; `input` itself when `len == 0`).
    #[inline]
    pub fn shift(&mut self, input: bool) -> bool {
        if self.bits.is_empty() {
            return input;
        }
        let out = self.bits[self.head];
        self.bits[self.head] = input;
        self.head = (self.head + 1) % self.bits.len();
        out
    }

    /// Reset all stored bits to zero.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
        self.head = 0;
    }

    /// Fault-injection hook: invert the stored bit that is `age` shifts
    /// from the output end (`age = 0` is the next bit to be shifted
    /// out). A no-op on the zero-length passthrough register or when
    /// `age` exceeds the length — the fault lands on wiring that holds
    /// no state.
    pub fn flip_bit(&mut self, age: usize) {
        if age < self.bits.len() {
            let i = (self.head + age) % self.bits.len();
            self.bits[i] = !self.bits[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feed two m-bit words through a state machine bit-serially and
    /// return the resulting word.
    fn run_serial(op: OpKind, a: u64, b: u64, m: u32) -> u64 {
        let mut sm = SumStateMachine::new();
        let mut out = 0u64;
        match op {
            OpKind::Plus => {
                for k in 0..m {
                    let s = sm.step(op, (a >> k) & 1 == 1, (b >> k) & 1 == 1);
                    out |= (s as u64) << k;
                }
            }
            OpKind::Max => {
                for k in (0..m).rev() {
                    let s = sm.step(op, (a >> k) & 1 == 1, (b >> k) & 1 == 1);
                    out |= (s as u64) << k;
                }
            }
        }
        out
    }

    #[test]
    fn serial_adder_exhaustive_8bit() {
        for a in 0..=255u64 {
            for b in 0..=255u64 {
                assert_eq!(
                    run_serial(OpKind::Plus, a, b, 8),
                    (a + b) & 0xFF,
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn serial_max_exhaustive_8bit() {
        for a in 0..=255u64 {
            for b in 0..=255u64 {
                assert_eq!(run_serial(OpKind::Max, a, b, 8), a.max(b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn serial_64bit_spot_checks() {
        let pairs = [
            (0u64, 0u64),
            (u64::MAX, 1),
            (0x8000_0000_0000_0000, 0x7FFF_FFFF_FFFF_FFFF),
            (123456789012345, 987654321098765),
        ];
        for (a, b) in pairs {
            assert_eq!(run_serial(OpKind::Plus, a, b, 64), a.wrapping_add(b));
            assert_eq!(run_serial(OpKind::Max, a, b, 64), a.max(b));
        }
    }

    #[test]
    fn max_state_transitions() {
        // MSB-first: 0b10 vs 0b01 — first bit decides A greater.
        let mut sm = SumStateMachine::new();
        assert_eq!(sm.state(), (false, false));
        let s = sm.step(OpKind::Max, true, false);
        assert!(s);
        assert_eq!(sm.state(), (true, false));
        // Once decided for A, B's bits are ignored.
        let s = sm.step(OpKind::Max, false, true);
        assert!(!s);
        assert_eq!(sm.state(), (true, false));
    }

    #[test]
    fn plus_carry_state() {
        let mut sm = SumStateMachine::new();
        // 1 + 1 (LSB): sum 0 carry 1.
        assert!(!sm.step(OpKind::Plus, true, true));
        assert_eq!(sm.state(), (true, false));
        // 0 + 0 + carry: sum 1 carry 0.
        assert!(sm.step(OpKind::Plus, false, false));
        assert_eq!(sm.state(), (false, false));
    }

    #[test]
    fn clear_resets() {
        let mut sm = SumStateMachine::new();
        sm.step(OpKind::Plus, true, true);
        sm.clear();
        assert_eq!(sm.state(), (false, false));
    }

    #[test]
    fn shift_register_delays_by_len() {
        let mut r = ShiftRegister::new(3);
        let inputs = [true, false, true, true, false, false, true];
        let mut outs = Vec::new();
        for &i in &inputs {
            outs.push(r.shift(i));
        }
        // First 3 outputs are the initial zeros; then inputs delayed by 3.
        assert_eq!(
            outs,
            vec![false, false, false, true, false, true, true]
        );
    }

    #[test]
    fn zero_length_register_is_passthrough() {
        let mut r = ShiftRegister::new(0);
        assert!(r.shift(true));
        assert!(!r.shift(false));
        assert!(r.is_empty());
    }

    #[test]
    fn register_clear() {
        let mut r = ShiftRegister::new(2);
        r.shift(true);
        r.shift(true);
        r.clear();
        assert!(!r.shift(false));
        assert!(!r.shift(false));
    }

    #[test]
    fn opkind_word_apply() {
        assert_eq!(OpKind::Plus.apply(200, 100, 8), 44);
        assert_eq!(OpKind::Max.apply(200, 100, 8), 200);
        assert_eq!(OpKind::Plus.apply(u64::MAX, 2, 64), 1);
        assert_eq!(OpKind::Plus.identity(), 0);
        assert_eq!(OpKind::Max.identity(), 0);
    }
}
