//! Segmented scans in hardware: "some of the other scan operations,
//! such as the segmented scan operations, can be implemented directly
//! with little additional hardware" (§3, citing \[7]).
//!
//! The addition is exactly one flag path: each operand travels as an
//! `m + 1`-bit *frame* — the segment flag first, then the value bits.
//! A unit combining frames `(f_a, v_a)` and `(f_b, v_b)` applies the
//! associative segmented operator
//!
//! ```text
//! (f_a, v_a) ⊕seg (f_b, v_b) = (f_a | f_b, if f_b { v_b } else { v_a ⊕ v_b })
//! ```
//!
//! in serial form: when the right flag is set the unit simply passes
//! the right stream through (one mux); otherwise it runs the ordinary
//! sum state machine. The flag arriving first is what makes the
//! single-pass serial evaluation possible — one extra flip-flop and a
//! mux per state machine, the paper's "little additional hardware".
//!
//! Latency: `(m + 1) + 2 lg n − 1` bit cycles — one cycle over the
//! unsegmented circuit.

use crate::tree::CircuitRun;
use crate::unit::{OpKind, ShiftRegister, SumStateMachine};

/// One tree unit with the segmented frame path.
#[derive(Debug, Clone)]
struct SegUnit {
    up_sm: SumStateMachine,
    /// When set, the up path passes the right child's stream through.
    up_mode: bool,
    down_sm: SumStateMachine,
    /// When set, the down path passes the stored left stream through.
    down_mode: bool,
    fifo: ShiftRegister,
    up_out: bool,
    left_out: bool,
    right_out: bool,
}

impl SegUnit {
    fn new(depth: usize) -> Self {
        SegUnit {
            up_sm: SumStateMachine::new(),
            up_mode: false,
            down_sm: SumStateMachine::new(),
            down_mode: false,
            fifo: ShiftRegister::new(2 * depth),
            up_out: false,
            left_out: false,
            right_out: false,
        }
    }

    fn clear(&mut self) {
        self.up_sm.clear();
        self.down_sm.clear();
        self.fifo.clear();
        self.up_mode = false;
        self.down_mode = false;
        self.up_out = false;
        self.left_out = false;
        self.right_out = false;
    }
}

/// A scan tree whose operands carry a segment flag ahead of the value
/// bits, executing segmented `+-scan` / `max-scan` in one pass.
#[derive(Debug, Clone)]
pub struct SegTreeScanCircuit {
    n_leaves: usize,
    levels: u32,
    units: Vec<SegUnit>,
}

/// The result of a segmented circuit run: the raw pair-operator scan
/// (value plus or-of-flags) at every leaf, and the cycle count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegCircuitRun {
    /// Pair-scan value delivered to each leaf (before the head mask).
    pub raw_values: Vec<u64>,
    /// Or of the flags strictly left of each leaf.
    pub seen_flag: Vec<bool>,
    /// Total clock cycles.
    pub cycles: u64,
}

impl SegTreeScanCircuit {
    /// Build a segmented scan tree over `n_leaves` (power of two).
    ///
    /// # Panics
    /// If `n_leaves` is zero or not a power of two.
    pub fn new(n_leaves: usize) -> Self {
        assert!(n_leaves > 0 && n_leaves.is_power_of_two());
        let levels = n_leaves.trailing_zeros();
        let mut units = Vec::with_capacity(n_leaves);
        units.push(SegUnit::new(0));
        for k in 1..n_leaves {
            units.push(SegUnit::new(k.ilog2() as usize));
        }
        SegTreeScanCircuit {
            n_leaves,
            levels,
            units,
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Reset all state.
    pub fn clear(&mut self) {
        for u in &mut self.units[1..] {
            u.clear();
        }
    }

    /// Run one segmented scan: frames of `1 + m_bits` bits enter the
    /// leaves; the raw pair-operator exclusive scan leaves them.
    ///
    /// # Panics
    /// On length/width violations, as [`crate::tree::TreeScanCircuit`].
    pub fn run_raw(
        &mut self,
        op: OpKind,
        values: &[u64],
        flags: &[bool],
        m_bits: u32,
    ) -> SegCircuitRun {
        assert!((1..=64).contains(&m_bits));
        assert_eq!(values.len(), flags.len(), "values/flags length mismatch");
        assert!(values.len() <= self.n_leaves, "too many values");
        let mask = if m_bits == 64 {
            u64::MAX
        } else {
            (1u64 << m_bits) - 1
        };
        for &v in values {
            assert!(v & !mask == 0, "value {v} does not fit in {m_bits} bits");
        }
        self.clear();
        let n = self.n_leaves;
        let frame = m_bits as u64 + 1;
        if n == 1 {
            return SegCircuitRun {
                raw_values: vec![0; values.len()],
                seen_flag: vec![false; values.len()],
                cycles: frame,
            };
        }
        let levels = self.levels as u64;
        let latency = 2 * levels - 1;
        let total = frame + latency;
        let mut raw_values = vec![0u64; n];
        let mut seen_flag = vec![false; n];
        for t in 0..total {
            // Leaf inputs this cycle: bit `t` of the frame (flag first).
            let leaf_in: Vec<bool> = (0..n)
                .map(|p| {
                    if t >= frame {
                        return false;
                    }
                    if t == 0 {
                        return flags.get(p).copied().unwrap_or(false);
                    }
                    let v = values.get(p).copied().unwrap_or(0);
                    let k = t - 1; // value bit index within the frame
                    let bit_index = match op {
                        OpKind::Plus => k,
                        OpKind::Max => m_bits as u64 - 1 - k,
                    };
                    (v >> bit_index) & 1 == 1
                })
                .collect();
            // Sample phase (synchronous registers).
            let mut a_in = vec![false; n];
            let mut b_in = vec![false; n];
            let mut d_in = vec![false; n];
            for k in 1..n {
                let (a, b) = if 2 * k >= n {
                    (leaf_in[2 * k - n], leaf_in[2 * k - n + 1])
                } else {
                    (self.units[2 * k].up_out, self.units[2 * k + 1].up_out)
                };
                a_in[k] = a;
                b_in[k] = b;
                d_in[k] = if k == 1 {
                    false
                } else if k % 2 == 0 {
                    self.units[k / 2].left_out
                } else {
                    self.units[k / 2].right_out
                };
            }
            let leaf_out: Vec<bool> = (0..n)
                .map(|p| {
                    let parent = (n + p) / 2;
                    if p % 2 == 0 {
                        self.units[parent].left_out
                    } else {
                        self.units[parent].right_out
                    }
                })
                .collect();
            // Commit phase. A unit at depth d sees up-frame bit
            // `t − (levels−1−d)` and down-frame bit `t − (levels+d−1)`
            // (mod frame); position 0 is the flag bit.
            for k in 1..n {
                let depth = k.ilog2() as u64;
                let (a, b, d) = (a_in[k], b_in[k], d_in[k]);
                let u = &mut self.units[k];
                // --- up path ---
                let up_arrival = (levels - 1 - depth) % frame;
                let up_pos = (t + frame - up_arrival) % frame;
                if up_pos == 0 {
                    u.up_sm.clear();
                    u.up_mode = b; // right flag set → pass right through
                    u.up_out = a | b;
                } else if u.up_mode {
                    u.up_out = b;
                } else {
                    u.up_out = u.up_sm.step(op, a, b);
                }
                let f = u.fifo.shift(a);
                // --- down path ---
                let down_arrival = (levels + depth - 1) % frame;
                let down_pos = (t + frame - down_arrival) % frame;
                u.left_out = d;
                if down_pos == 0 {
                    u.down_sm.clear();
                    u.down_mode = f; // stored left flag set → pass left
                    u.right_out = d | f;
                } else if u.down_mode {
                    u.right_out = f;
                } else {
                    u.right_out = u.down_sm.step(op, d, f);
                }
            }
            // Collect: leaf frame bit index is t − latency.
            if t >= latency {
                let pos = t - latency;
                if pos == 0 {
                    for (p, &bit) in leaf_out.iter().enumerate() {
                        seen_flag[p] = bit;
                    }
                } else {
                    let k = pos - 1;
                    let bit_index = match op {
                        OpKind::Plus => k,
                        OpKind::Max => m_bits as u64 - 1 - k,
                    };
                    for (p, &bit) in leaf_out.iter().enumerate() {
                        if bit {
                            raw_values[p] |= 1 << bit_index;
                        }
                    }
                }
            }
        }
        raw_values.truncate(values.len());
        seen_flag.truncate(values.len());
        SegCircuitRun {
            raw_values,
            seen_flag,
            cycles: total,
        }
    }

    /// Execute a full segmented exclusive scan: the circuit run plus
    /// the one-elementwise-step head mask (a segment head's exclusive
    /// result is the identity).
    pub fn seg_scan(
        &mut self,
        op: OpKind,
        values: &[u64],
        flags: &[bool],
        m_bits: u32,
    ) -> CircuitRun {
        let run = self.run_raw(op, values, flags, m_bits);
        let out: Vec<u64> = run
            .raw_values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i == 0 || flags[i] {
                    op.identity()
                } else {
                    v
                }
            })
            .collect();
        CircuitRun {
            values: out,
            cycles: run.cycles,
        }
    }

    /// The pipeline bound: `(m + 1) + 2 lg n` cycles.
    pub fn cycle_bound(&self, m_bits: u32) -> u64 {
        m_bits as u64 + 1 + 2 * self.levels as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::op::{Max, Sum};
    use scan_core::segmented::{seg_scan as sw_seg_scan, Segments};

    fn check(op: OpKind, values: &[u64], flags: &[bool], m: u32) {
        let n = values.len().next_power_of_two().max(1);
        let mut c = SegTreeScanCircuit::new(n);
        let run = c.seg_scan(op, values, flags, m);
        let segs = Segments::from_flags(flags.to_vec());
        let expect = match op {
            OpKind::Plus => {
                // Software seg-scan on the m-bit field (wrapping).
                let mask = if m == 64 { u64::MAX } else { (1 << m) - 1 };
                sw_seg_scan::<Sum, _>(values, &segs)
                    .into_iter()
                    .map(|x| x & mask)
                    .collect::<Vec<_>>()
            }
            OpKind::Max => sw_seg_scan::<Max, _>(values, &segs),
        };
        assert_eq!(run.values, expect, "op={op:?} values={values:?} flags={flags:?}");
        assert!(run.cycles <= c.cycle_bound(m));
    }

    #[test]
    fn figure4_on_hardware() {
        let values = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let flags = [true, false, true, false, false, false, true, false];
        check(OpKind::Plus, &values, &flags, 8);
        check(OpKind::Max, &values, &flags, 8);
    }

    #[test]
    fn single_segment_matches_unsegmented_circuit() {
        let values = [7u64, 2, 9, 4];
        let flags = [true, false, false, false];
        let mut seg = SegTreeScanCircuit::new(4);
        let seg_run = seg.seg_scan(OpKind::Plus, &values, &flags, 8);
        let mut plain = crate::tree::TreeScanCircuit::new(4);
        let plain_run = plain.scan(OpKind::Plus, &values, 8);
        assert_eq!(seg_run.values, plain_run.values);
        // One extra cycle for the flag bit.
        assert_eq!(seg_run.cycles, plain_run.cycles + 1);
    }

    #[test]
    fn every_leaf_its_own_segment() {
        let values = [3u64, 1, 4, 1];
        let flags = [true; 4];
        check(OpKind::Plus, &values, &flags, 8);
        check(OpKind::Max, &values, &flags, 8);
    }

    #[test]
    fn random_inputs_match_software() {
        let mut x = 9u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 33
        };
        for lg_n in [1u32, 2, 3, 4, 6] {
            let n = 1usize << lg_n;
            for m in [1u32, 4, 8, 16, 32] {
                let mask = if m == 64 { u64::MAX } else { (1 << m) - 1 };
                let values: Vec<u64> = (0..n).map(|_| rng() & mask).collect();
                let flags: Vec<bool> = (0..n).map(|_| rng() % 3 == 0).collect();
                check(OpKind::Plus, &values, &flags, m);
                check(OpKind::Max, &values, &flags, m);
            }
        }
    }

    #[test]
    fn single_leaf() {
        let mut c = SegTreeScanCircuit::new(1);
        let run = c.seg_scan(OpKind::Plus, &[9], &[false], 8);
        assert_eq!(run.values, vec![0]);
    }

    #[test]
    fn reusable_across_runs() {
        let mut c = SegTreeScanCircuit::new(4);
        let r1 = c.seg_scan(OpKind::Plus, &[1, 2, 3, 4], &[true, false, true, false], 8);
        c.seg_scan(OpKind::Max, &[9, 9, 9, 9], &[true, true, true, true], 8);
        let r3 = c.seg_scan(OpKind::Plus, &[1, 2, 3, 4], &[true, false, true, false], 8);
        assert_eq!(r1, r3);
    }

    #[test]
    fn hardware_overhead_is_one_cycle_per_scan() {
        // "Little additional hardware": the frame grows by one bit, the
        // tree by nothing.
        let c = SegTreeScanCircuit::new(64);
        assert_eq!(c.cycle_bound(32), 32 + 1 + 12);
    }
}
