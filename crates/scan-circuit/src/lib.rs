//! # scan-circuit
//!
//! A logic-level, cycle-accurate simulation of the hardware described in
//! Section 3 of *Scans as Primitive Parallel Operations*: the
//! bit-pipelined balanced-binary-tree circuit that executes the two
//! primitive scans, `+-scan` and `max-scan`, in `m + 2 lg n` bit cycles
//! over `m`-bit fields and `n` leaves.
//!
//! The simulation is faithful to the paper's component inventory:
//!
//! - [`unit::SumStateMachine`] — the three-flip-flop state machine of
//!   Figure 15, stepped one bit per clock, executing either a serial
//!   addition (LSB first) or a serial maximum (MSB first) depending on
//!   the `Op` control line;
//! - [`unit::ShiftRegister`] — the variable-length FIFO of Figure 14
//!   that holds the left child's bits between the up sweep and the down
//!   sweep (`2i` bits at depth `i` from the root; length 0 at the root,
//!   which is why values "are automatically reflected back down");
//! - [`tree::TreeScanCircuit`] — the balanced tree of units (Figure 13's
//!   layout) clocked cycle by cycle, operands entering the leaves one
//!   bit per cycle and exclusive-scan results leaving the leaves one bit
//!   per cycle;
//! - [`tree::tree_scan_trace`] — the word-level two-sweep tree algorithm
//!   of §3.1 with the per-unit memory trace of Figure 13;
//! - [`cost`] — hardware accounting (state machines, FIFO bits, wires)
//!   and the §3.3 example system (4096 processors, 64 boards);
//! - [`baseline`] — bit-serial cost models for the comparisons the
//!   paper makes: a shared-memory reference through a butterfly network
//!   (Table 2) and Batcher's bitonic sort (Table 4);
//! - [`backend::CircuitBackend`] — an implementation of
//!   `scan_core::simulate::PrimitiveScans` that routes every primitive
//!   scan through the simulated hardware, so the whole §3.4 simulation
//!   layer can run on the circuit.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod bitsliced;
pub mod baseline;
pub mod cost;
pub mod router;
pub mod seg_tree;
pub mod tree;
pub mod unit;

pub use backend::CircuitBackend;
pub use bitsliced::{BitSlicedVec, BitslicedScans};
pub use cost::{ExampleSystem, HardwareCost};
pub use router::{bit_reversal_permutation, ButterflyRouter, RouteRun};
pub use seg_tree::{SegCircuitRun, SegTreeScanCircuit};
pub use tree::{tree_scan_trace, CircuitFault, CircuitRun, FaultSite, OpKind, TreeScanCircuit};
pub use unit::{ShiftRegister, SumStateMachine};
