//! Bit-serial cost models for the systems the paper compares against
//! (Tables 2 and 4): a shared-memory reference through a multistage
//! network, and Batcher's bitonic sorting network.
//!
//! These are the *comparators*, not the contribution: the paper's
//! hardware numbers come from the CM-1/CM-2, which we do not have, so —
//! per the substitution rule recorded in `DESIGN.md` — we model both
//! sides at the same level of abstraction (bit cycles through ideal
//! pipelined networks) and compare shapes. The scan side of each
//! comparison is measured on the cycle-accurate simulator, which agrees
//! with [`scan_bit_cycles`] exactly.

/// Bit cycles for one scan over `n` processors on an `m`-bit field
/// through the tree circuit: `m + 2 lg n` (§3.1; the simulator measures
/// `m + 2 lg n − 1`).
pub fn scan_bit_cycles(n_procs: usize, m_bits: u32) -> u64 {
    m_bits as u64 + 2 * ceil_lg(n_procs)
}

/// Bit cycles for one arbitrary shared-memory reference from `n`
/// processors through a pipelined butterfly/omega network: the message
/// traverses `lg n` switch stages carrying a `lg n`-bit address and `m`
/// data bits, and the reply returns the same way —
/// `2·(lg n + lg n + m)`.
///
/// This is the idealized (probabilistic `O(lg n)` bit time) router of
/// the paper's §1; real routers are slower under contention, so the
/// comparison is conservative in the router's favor.
pub fn memory_reference_bit_cycles(n_procs: usize, m_bits: u32) -> u64 {
    let lg = ceil_lg(n_procs);
    2 * (lg + lg + m_bits as u64)
}

/// Switch count of a butterfly network over `n` processors:
/// `(n/2)·lg n` 2×2 switches — the `O(n lg n)` circuit-size row of
/// Table 2.
pub fn butterfly_switches(n_procs: usize) -> u64 {
    (n_procs as u64 / 2) * ceil_lg(n_procs)
}

/// VLSI-area model for a shared-memory network over `n` processors:
/// `Θ(n²/lg² n)` wiring area for a network with `O(lg n)` routing time
/// (Leighton's sorting/routing lower bound, cited as \[29] in Table 2 —
/// the paper lists `n²/lg n`; either way it is superlinear).
pub fn network_area_model(n_procs: usize) -> f64 {
    let n = n_procs as f64;
    let lg = (ceil_lg(n_procs) as f64).max(1.0);
    n * n / lg
}

/// VLSI-area model for the scan tree: `Θ(n)` (Table 2, citing
/// Leiserson's area-efficient layouts \[30]).
pub fn scan_area_model(n_procs: usize) -> f64 {
    n_procs as f64
}

/// Compare-exchange stages in Batcher's bitonic sorting network over
/// `n` keys: `lg n (lg n + 1) / 2`.
pub fn bitonic_stages(n_keys: usize) -> u64 {
    let lg = ceil_lg(n_keys);
    lg * (lg + 1) / 2
}

/// Bit cycles for a full bitonic sort of `n` keys of `d` bits on a
/// bit-serial network (Table 4's `O(d + lg² n)` with pipelining across
/// stages; without pipelining each stage pays the full key length):
/// `stages·(d + c)` with a small per-stage constant `c` for the
/// compare-exchange decision.
pub fn bitonic_sort_bit_cycles(n_keys: usize, d_bits: u32) -> u64 {
    const STAGE_OVERHEAD: u64 = 2;
    bitonic_stages(n_keys) * (d_bits as u64 + STAGE_OVERHEAD)
}

/// Bit cycles for the split radix sort of `n` keys of `d` bits on scan
/// hardware (Table 4's `O(d lg n)`): `d` passes, each performing two
/// scans on `lg n`-bit indices plus one permutation route of the
/// `d + lg n`-bit (key, index) message.
pub fn split_radix_sort_bit_cycles(n_keys: usize, d_bits: u32) -> u64 {
    let lg = ceil_lg(n_keys) as u32;
    let per_pass = 2 * scan_bit_cycles(n_keys, lg) + route_bit_cycles(n_keys, d_bits + lg);
    d_bits as u64 * per_pass
}

/// Bit cycles to route one `b`-bit message through the butterfly:
/// `lg n` stages plus the message length.
pub fn route_bit_cycles(n_procs: usize, b_bits: u32) -> u64 {
    ceil_lg(n_procs) + b_bits as u64
}

fn ceil_lg(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_beats_memory_reference_at_cm2_scale() {
        // Table 2's actual row: 64K processors, and the scan is faster.
        let scan = scan_bit_cycles(1 << 16, 32);
        let mem = memory_reference_bit_cycles(1 << 16, 32);
        assert!(scan < mem, "scan {scan} vs reference {mem}");
    }

    #[test]
    fn scan_hardware_is_sublinear_in_network_hardware() {
        // Table 2's "percent of hardware" row: the scan tree is a
        // vanishing fraction of the network.
        let n = 1 << 16;
        let tree = crate::cost::HardwareCost::for_leaves(n).size_components() as u64;
        let net = butterfly_switches(n) * 10; // a 2×2 switch ≫ 10 components
        assert!(tree * 10 < net, "tree {tree} vs network {net}");
    }

    #[test]
    fn area_models_ordering() {
        let n = 1 << 16;
        assert!(scan_area_model(n) * 100.0 < network_area_model(n));
    }

    #[test]
    fn table4_near_parity_at_cm1_scale() {
        // Paper: 20,000 (split radix) vs 19,000 (bitonic) bit cycles at
        // n = 64K, d = 16 — near parity, radix slightly slower. Our
        // models must reproduce that shape: ratio within [0.8, 2.0].
        let radix = split_radix_sort_bit_cycles(1 << 16, 16);
        let bitonic = bitonic_sort_bit_cycles(1 << 16, 16);
        let ratio = radix as f64 / bitonic as f64;
        assert!(
            (0.8..2.0).contains(&ratio),
            "radix {radix} vs bitonic {bitonic} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn bitonic_stage_count() {
        assert_eq!(bitonic_stages(2), 1);
        assert_eq!(bitonic_stages(1 << 16), 136);
    }

    #[test]
    fn asymptotic_crossover() {
        // Bitonic's lg² n term eventually dominates the radix sort's
        // d·lg n for fixed d as n grows.
        let d = 16;
        let small_ratio = split_radix_sort_bit_cycles(1 << 10, d) as f64
            / bitonic_sort_bit_cycles(1 << 10, d) as f64;
        let big_ratio = split_radix_sort_bit_cycles(1 << 26, d) as f64
            / bitonic_sort_bit_cycles(1 << 26, d) as f64;
        assert!(big_ratio < small_ratio);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(scan_bit_cycles(1, 8), 8);
        assert_eq!(bitonic_stages(1), 0);
        assert_eq!(route_bit_cycles(1, 8), 8);
    }
}
