//! A packet-level butterfly router — the *other side* of Table 2.
//!
//! The paper compares the scan tree against "references to a shared
//! memory", i.e. messages through a multistage network. To make the
//! comparison measured-vs-measured (not measured-vs-formula), this
//! module simulates an `n`-input butterfly: `lg n` stages of 2×2
//! switches, one message per output port per cycle, FIFO queues at
//! switch inputs, destination-bit routing. The delivery time of a full
//! permutation — every processor referencing memory at once, the
//! P-RAM's one "unit-time" step — is measured in switch cycles and
//! converted to bit cycles with the wormhole rule (a `b`-bit message
//! pipelines, so the tail arrives `b − 1` bit cycles after the head).
//!
//! The idealized probabilistic `O(lg n)` claim of the paper's §1 shows
//! up directly: random permutations deliver in near-`lg n` switch
//! cycles, while adversarial patterns (bit reversal) congest.

/// One in-flight message: destination output and an identifying
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    dest: usize,
    src: usize,
}

/// Result of routing one batch of messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRun {
    /// Switch cycles until the last head flit arrived.
    pub switch_cycles: u64,
    /// The source that each output received (`usize::MAX` = none).
    pub received_from: Vec<usize>,
    /// Largest queue occupancy observed anywhere (congestion measure).
    pub max_queue: usize,
}

impl RouteRun {
    /// Wormhole bit-cycle count for `b`-bit messages: head latency in
    /// switch cycles (each one bit time on single-bit links per hop)
    /// plus the pipelined tail.
    pub fn bit_cycles(&self, message_bits: u32) -> u64 {
        self.switch_cycles + message_bits as u64 - 1
    }
}

/// An `n`-input butterfly network (`n` a power of two) of 2×2 switches.
#[derive(Debug, Clone)]
pub struct ButterflyRouter {
    n: usize,
    stages: u32,
}

impl ButterflyRouter {
    /// Build a router over `n` ports.
    ///
    /// # Panics
    /// If `n` is not a power of two or is < 2.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2);
        ButterflyRouter {
            n,
            stages: n.trailing_zeros(),
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.n
    }

    /// Number of switch stages (`lg n`).
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Total 2×2 switches (`(n/2)·lg n` — Table 2's `O(n lg n)`
    /// hardware).
    pub fn switch_count(&self) -> u64 {
        (self.n as u64 / 2) * self.stages as u64
    }

    /// Route one message set: `dests[i]` is input `i`'s destination
    /// (`usize::MAX` = no message). Destinations need not be unique —
    /// colliding messages serialize in the queues, exactly the hot-spot
    /// behaviour multistage networks suffer.
    ///
    /// # Panics
    /// If a destination is out of range.
    pub fn route(&self, dests: &[usize]) -> RouteRun {
        assert!(dests.len() <= self.n, "too many messages");
        for &d in dests {
            assert!(d == usize::MAX || d < self.n, "destination out of range");
        }
        let n = self.n;
        let l = self.stages as usize;
        // queues[s][i]: FIFO feeding stage s at row i; stage l = output.
        let mut queues: Vec<Vec<std::collections::VecDeque<Packet>>> =
            vec![vec![std::collections::VecDeque::new(); n]; l + 1];
        let mut live = 0usize;
        for (i, &d) in dests.iter().enumerate() {
            if d != usize::MAX {
                queues[0][i].push_back(Packet { dest: d, src: i });
                live += 1;
            }
        }
        let mut received_from = vec![usize::MAX; n];
        let mut cycles = 0u64;
        let mut max_queue = 0usize;
        let mut rr = false; // round-robin tie-break between switch inputs
        while live > 0 {
            cycles += 1;
            assert!(
                cycles <= (self.n as u64) * (l as u64 + 2) * 4 + 64,
                "router livelocked"
            );
            // Move stage by stage, later stages first so a message
            // advances at most one hop per cycle.
            for s in (0..l).rev() {
                // Butterfly wiring: stage s switches pair rows that
                // differ in bit (l-1-s). Each output row accepts one
                // packet per cycle.
                let bit = l - 1 - s;
                let mut accepted: Vec<bool> = vec![false; n];
                // Alternate which input gets priority for fairness.
                let order: Vec<usize> = if rr {
                    (0..n).rev().collect()
                } else {
                    (0..n).collect()
                };
                for &row in &order {
                    if let Some(&pkt) = queues[s][row].front() {
                        // The switch sends toward the row whose bit
                        // `bit` matches the destination's bit.
                        let out_row = if (pkt.dest >> bit) & 1 == 1 {
                            row | (1 << bit)
                        } else {
                            row & !(1 << bit)
                        };
                        if !accepted[out_row] {
                            accepted[out_row] = true;
                            queues[s][row].pop_front();
                            if s + 1 == l {
                                received_from[out_row] = pkt.src;
                                live -= 1;
                            } else {
                                queues[s + 1][out_row].push_back(pkt);
                            }
                        }
                    }
                }
            }
            rr = !rr;
            for stage in &queues {
                for q in stage {
                    max_queue = max_queue.max(q.len());
                }
            }
        }
        RouteRun {
            switch_cycles: cycles,
            received_from,
            max_queue,
        }
    }

    /// Health probe for supervised executors: route the identity
    /// permutation and verify that every output received its own row's
    /// packet in exactly `stages` switch cycles with no queueing. The
    /// identity pattern is contention-free on a butterfly, so any
    /// deviation means the switch fabric (or its simulation) is
    /// misrouting or stalling.
    pub fn self_check(&self) -> bool {
        let dests: Vec<usize> = (0..self.n).collect();
        let run = self.route(&dests);
        run.switch_cycles == self.stages as u64
            && run.max_queue <= 1
            && run
                .received_from
                .iter()
                .enumerate()
                .all(|(out, &src)| src == out)
    }

    /// Bit cycles for one full memory-reference round of `m`-bit values
    /// under the routing pattern `dests` — request only (a write); a
    /// read doubles it (request + reply).
    pub fn reference_bit_cycles(&self, dests: &[usize], m_bits: u32) -> u64 {
        let run = self.route(dests);
        // Message = lg n address bits + payload.
        run.bit_cycles(self.stages + m_bits)
    }
}

/// The bit-reversal permutation — a classic butterfly adversary.
pub fn bit_reversal_permutation(n: usize) -> Vec<usize> {
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i as u64).reverse_bits() as usize >> (64 - bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        let mut x = seed | 1;
        for i in (1..n).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn identity_delivers_in_lg_n_cycles() {
        let r = ButterflyRouter::new(64);
        let dests: Vec<usize> = (0..64).collect();
        let run = r.route(&dests);
        assert_eq!(run.switch_cycles, 6, "one hop per stage, no contention");
        assert_eq!(run.max_queue, 1);
        for (out, &src) in run.received_from.iter().enumerate() {
            assert_eq!(src, out);
        }
    }

    #[test]
    fn every_permutation_delivers_correctly() {
        let r = ButterflyRouter::new(128);
        for seed in 0..5 {
            let p = random_permutation(128, seed);
            let run = r.route(&p);
            for (src, &dst) in p.iter().enumerate() {
                assert_eq!(run.received_from[dst], src, "seed {seed}");
            }
        }
    }

    #[test]
    fn random_permutations_deliver_near_lg_n() {
        let r = ButterflyRouter::new(1024);
        let mut worst = 0;
        for seed in 0..5 {
            let run = r.route(&random_permutation(1024, seed + 10));
            worst = worst.max(run.switch_cycles);
        }
        // The probabilistic O(lg n) claim: small constant × lg n.
        assert!(worst <= 8 * 10, "random routing took {worst} cycles");
    }

    #[test]
    fn bit_reversal_congests() {
        let n = 256;
        let r = ButterflyRouter::new(n);
        let adversarial = r.route(&bit_reversal_permutation(n));
        let random = r.route(&random_permutation(n, 3));
        assert!(
            2 * adversarial.switch_cycles > 3 * random.switch_cycles,
            "bit reversal ({}) should congest vs random ({})",
            adversarial.switch_cycles,
            random.switch_cycles
        );
        assert!(adversarial.max_queue > random.max_queue);
    }

    #[test]
    fn hotspot_serializes() {
        // All messages to one output: n cycles minimum.
        let n = 64;
        let r = ButterflyRouter::new(n);
        let run = r.route(&vec![5usize; n]);
        assert!(run.switch_cycles >= n as u64);
        assert_eq!(run.received_from[5], run.received_from[5]); // delivered
    }

    #[test]
    fn partial_traffic_and_empty() {
        let r = ButterflyRouter::new(8);
        let mut dests = vec![usize::MAX; 8];
        dests[3] = 6;
        let run = r.route(&dests);
        assert_eq!(run.received_from[6], 3);
        assert_eq!(run.switch_cycles, 3);
        let idle = r.route(&[usize::MAX; 8]);
        assert_eq!(idle.switch_cycles, 0);
    }

    #[test]
    fn self_check_passes_on_a_healthy_router() {
        for n in [2, 8, 64, 256] {
            assert!(ButterflyRouter::new(n).self_check(), "n={n}");
        }
    }

    #[test]
    fn wormhole_bit_cycles() {
        let r = ButterflyRouter::new(64);
        let dests: Vec<usize> = (0..64).collect();
        // 6 head cycles + (6 addr + 32 data − 1) pipelined tail.
        assert_eq!(r.reference_bit_cycles(&dests, 32), 6 + 6 + 32 - 1);
    }

    #[test]
    fn hardware_inventory() {
        let r = ButterflyRouter::new(1 << 16);
        assert_eq!(r.switch_count(), 32768 * 16);
        assert_eq!(r.stages(), 16);
    }
}
