//! The simulated hardware as a `PrimitiveScans` backend.
//!
//! `scan_core::simulate` builds every scan in the paper out of two
//! primitives. Plugging this backend in runs those constructions on the
//! cycle-accurate circuit — the full §3 + §3.4 stack, in software.

use std::cell::RefCell;

use scan_core::simulate::PrimitiveScans;

use crate::tree::{OpKind, TreeScanCircuit};

/// A [`PrimitiveScans`] implementation that executes every primitive on
/// the simulated tree circuit, growing the tree (by powers of two) as
/// needed and padding inputs with the identity.
///
/// Also counts the bit cycles consumed, so experiments can report
/// simulated hardware time.
#[derive(Debug)]
pub struct CircuitBackend {
    m_bits: u32,
    circuit: RefCell<Option<TreeScanCircuit>>,
    cycles: RefCell<u64>,
    scans: RefCell<u64>,
}

impl CircuitBackend {
    /// A backend operating on `m`-bit fields (1..=64).
    pub fn new(m_bits: u32) -> Self {
        assert!((1..=64).contains(&m_bits));
        CircuitBackend {
            m_bits,
            circuit: RefCell::new(None),
            cycles: RefCell::new(0),
            scans: RefCell::new(0),
        }
    }

    /// Total bit cycles consumed by all scans so far.
    pub fn cycles(&self) -> u64 {
        *self.cycles.borrow()
    }

    /// Number of primitive scans executed.
    pub fn scans(&self) -> u64 {
        *self.scans.borrow()
    }

    /// The field width in bits.
    pub fn m_bits(&self) -> u32 {
        self.m_bits
    }

    /// Health probe for supervised executors: run two tiny known scans
    /// through the circuit and verify them against the paper's expected
    /// outputs. `true` means the scan unit answered correctly; a
    /// quarantined backend can be re-probed with this before being
    /// re-admitted to a fallback chain.
    ///
    /// The probe exercises the real datapath (tree circuit, current
    /// field width) but costs only two 8-leaf scans, so it is cheap
    /// enough to call on a supervisor's probation schedule.
    pub fn self_check(&self) -> bool {
        let a = [2u64, 1, 2, 3, 5, 8, 13, 21];
        let mask = if self.m_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.m_bits) - 1
        };
        let a: Vec<u64> = a.iter().map(|&x| x & mask).collect();
        let plus_ok = self.plus_scan(&a)
            == scan_core::parallel::seq_exclusive_scan_by(&a, 0, |x, y| {
                x.wrapping_add(y) & mask
            });
        let max_ok =
            self.max_scan(&a) == scan_core::parallel::seq_exclusive_scan_by(&a, 0, u64::max);
        plus_ok && max_ok
    }

    fn run(&self, op: OpKind, a: &[u64]) -> Vec<u64> {
        if a.is_empty() {
            return Vec::new();
        }
        let n = a.len().next_power_of_two();
        let mut slot = self.circuit.borrow_mut();
        let needs_new = slot.as_ref().is_none_or(|c| c.n_leaves() < n);
        if needs_new {
            *slot = None;
        }
        let circuit = slot.get_or_insert_with(|| TreeScanCircuit::new(n));
        let run = circuit.scan(op, a, self.m_bits);
        *self.cycles.borrow_mut() += run.cycles;
        *self.scans.borrow_mut() += 1;
        run.values
    }
}

impl PrimitiveScans for CircuitBackend {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(OpKind::Plus, a)
    }

    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(OpKind::Max, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::op::{Max, Min, Or, Sum};
    use scan_core::segmented::{seg_scan, Segments};
    use scan_core::simulate;

    #[test]
    fn primitives_match_software() {
        let b = CircuitBackend::new(16);
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6, 100];
        assert_eq!(b.plus_scan(&a), scan_core::scan::<Sum, _>(&a));
        assert_eq!(b.max_scan(&a), scan_core::scan::<Max, _>(&a));
        assert_eq!(b.scans(), 2);
        assert!(b.cycles() > 0);
    }

    #[test]
    fn simulated_min_scan_on_hardware() {
        // min-scan = invert ∘ max-scan ∘ invert needs full-width fields.
        let b = CircuitBackend::new(64);
        let a = [7u64, 3, 9, 1];
        assert_eq!(simulate::min_scan_u64(&b, &a), scan_core::scan::<Min, _>(&a));
    }

    #[test]
    fn simulated_or_scan_on_hardware() {
        let b = CircuitBackend::new(1);
        let a = [false, true, false, false, true];
        assert_eq!(simulate::or_scan(&b, &a), scan_core::scan::<Or, _>(&a));
    }

    #[test]
    fn figure16_on_hardware() {
        let b = CircuitBackend::new(16);
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let segs = Segments::from_flags(vec![
            true, false, true, false, false, false, true, false,
        ]);
        let got = simulate::seg_max_scan_via_primitives(&b, &a, &segs, 8).unwrap();
        assert_eq!(got, seg_scan::<Max, _>(&a, &segs));
    }

    #[test]
    fn circuit_grows_and_is_reused() {
        let b = CircuitBackend::new(8);
        b.plus_scan(&[1, 2, 3]);
        b.plus_scan(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        b.plus_scan(&[1]);
        assert_eq!(b.scans(), 3);
    }

    #[test]
    fn self_check_passes_on_a_healthy_backend() {
        for m_bits in [1, 8, 16, 64] {
            let b = CircuitBackend::new(m_bits);
            assert!(b.self_check(), "m_bits={m_bits}");
        }
        // The probe uses the real datapath, so it is counted like any
        // other scan.
        let b = CircuitBackend::new(16);
        assert!(b.self_check());
        assert_eq!(b.scans(), 2);
    }

    #[test]
    fn empty_input() {
        let b = CircuitBackend::new(8);
        assert!(b.plus_scan(&[]).is_empty());
        assert_eq!(b.scans(), 0);
    }
}
