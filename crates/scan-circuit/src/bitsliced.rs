//! Bit-sliced vector arithmetic — the Connection Machine's execution
//! style. The CM-1/CM-2 processors the paper reports numbers for are
//! **bit-serial**: an `m`-bit vector operation is `m` single-bit steps
//! executed by every processor at once. This module reproduces that
//! model in software: a vector of `m`-bit integers is stored as `m`
//! bit *planes*, and each plane operation processes 64 lanes per word
//! with plain word-wide boolean logic.
//!
//! It serves two purposes: it is the "processor side" companion to the
//! bit-serial scan network (both consume one bit per cycle, which is
//! why the paper can overlap them), and its per-plane step counts are
//! the `d`-bit costs the Table 4 models charge.

/// A vector of `m`-bit unsigned integers in bit-plane layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSlicedVec {
    n: usize,
    /// `planes[k]` holds bit `k` of every lane, 64 lanes per word.
    planes: Vec<Vec<u64>>,
}

fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

impl BitSlicedVec {
    /// Slice a vector of values into `m_bits` planes.
    ///
    /// # Panics
    /// If a value does not fit in `m_bits` (1..=64).
    pub fn from_slice(values: &[u64], m_bits: u32) -> Self {
        assert!((1..=64).contains(&m_bits));
        let mask = if m_bits == 64 {
            u64::MAX
        } else {
            (1u64 << m_bits) - 1
        };
        for &v in values {
            assert!(v & !mask == 0, "value {v} does not fit in {m_bits} bits");
        }
        let n = values.len();
        let w = words_for(n);
        let mut planes = vec![vec![0u64; w]; m_bits as usize];
        for (i, &v) in values.iter().enumerate() {
            for (k, plane) in planes.iter_mut().enumerate() {
                if (v >> k) & 1 == 1 {
                    plane[i / 64] |= 1 << (i % 64);
                }
            }
        }
        BitSlicedVec { n, planes }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no lanes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Field width in bits.
    pub fn m_bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// Reassemble the lane values.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.n];
        for (k, plane) in self.planes.iter().enumerate() {
            for (i, v) in out.iter_mut().enumerate() {
                if (plane[i / 64] >> (i % 64)) & 1 == 1 {
                    *v |= 1 << k;
                }
            }
        }
        out
    }

    fn lane_mask(&self) -> u64 {
        // Valid lanes of the final word.
        let r = self.n % 64;
        if r == 0 {
            u64::MAX
        } else {
            (1u64 << r) - 1
        }
    }

    fn assert_compatible(&self, other: &Self) {
        assert_eq!(self.n, other.n, "lane count mismatch");
        assert_eq!(self.m_bits(), other.m_bits(), "width mismatch");
    }

    /// Lanewise wrapping addition: a ripple-carry adder run plane by
    /// plane — `m` single-bit steps, every lane in parallel (the CM's
    /// integer add).
    pub fn add(&self, other: &Self) -> Self {
        self.assert_compatible(other);
        let w = words_for(self.n);
        let mut carry = vec![0u64; w];
        let mut planes = Vec::with_capacity(self.planes.len());
        for (pa, pb) in self.planes.iter().zip(&other.planes) {
            let mut plane = vec![0u64; w];
            for j in 0..w {
                let (a, b, c) = (pa[j], pb[j], carry[j]);
                plane[j] = a ^ b ^ c;
                carry[j] = (a & b) | (a & c) | (b & c);
            }
            planes.push(plane);
        }
        BitSlicedVec { n: self.n, planes }
    }

    /// Lanewise comparison `self < other`, one bit per lane, computed
    /// MSB-first in `m` single-bit steps.
    pub fn lt_mask(&self, other: &Self) -> Vec<u64> {
        self.assert_compatible(other);
        let w = words_for(self.n);
        let mut lt = vec![0u64; w]; // decided: self < other
        let mut gt = vec![0u64; w]; // decided: self > other
        for k in (0..self.planes.len()).rev() {
            let pa = &self.planes[k];
            let pb = &other.planes[k];
            for j in 0..w {
                let undecided = !(lt[j] | gt[j]);
                lt[j] |= undecided & !pa[j] & pb[j];
                gt[j] |= undecided & pa[j] & !pb[j];
            }
        }
        if w > 0 {
            let m = self.lane_mask();
            lt[w - 1] &= m;
        }
        lt
    }

    /// Lanewise select: where `mask` has a 1, take `a`'s lane,
    /// otherwise `b`'s.
    pub fn select(mask: &[u64], a: &Self, b: &Self) -> Self {
        a.assert_compatible(b);
        assert_eq!(mask.len(), words_for(a.n), "mask length mismatch");
        let planes = a
            .planes
            .iter()
            .zip(&b.planes)
            .map(|(pa, pb)| {
                pa.iter()
                    .zip(pb)
                    .zip(mask)
                    .map(|((&x, &y), &m)| (x & m) | (y & !m))
                    .collect()
            })
            .collect();
        BitSlicedVec { n: a.n, planes }
    }

    /// Lanewise maximum in `2m` single-bit steps (compare + select).
    pub fn max(&self, other: &Self) -> Self {
        let lt = self.lt_mask(other);
        Self::select(&lt, other, self)
    }

    /// Lanewise minimum.
    pub fn min(&self, other: &Self) -> Self {
        let lt = self.lt_mask(other);
        Self::select(&lt, self, other)
    }

    /// Lanewise bitwise and (one step per plane).
    pub fn and(&self, other: &Self) -> Self {
        self.assert_compatible(other);
        let planes = self
            .planes
            .iter()
            .zip(&other.planes)
            .map(|(pa, pb)| pa.iter().zip(pb).map(|(&a, &b)| a & b).collect())
            .collect();
        BitSlicedVec { n: self.n, planes }
    }

    /// Lanewise bitwise or.
    pub fn or(&self, other: &Self) -> Self {
        self.assert_compatible(other);
        let planes = self
            .planes
            .iter()
            .zip(&other.planes)
            .map(|(pa, pb)| pa.iter().zip(pb).map(|(&a, &b)| a | b).collect())
            .collect();
        BitSlicedVec { n: self.n, planes }
    }

    /// Lanewise shift left by one bit (a plane rotation with a zero
    /// plane shifted in) — multiply by two modulo `2^m`.
    pub fn shl1(&self) -> Self {
        let w = words_for(self.n);
        let mut planes = Vec::with_capacity(self.planes.len());
        planes.push(vec![0u64; w]);
        planes.extend_from_slice(&self.planes[..self.planes.len() - 1]);
        BitSlicedVec { n: self.n, planes }
    }

    /// Single-bit plane steps a lanewise add costs: `m` (the Table 4
    /// models' `d`).
    pub fn add_bit_steps(&self) -> u64 {
        self.m_bits() as u64
    }

    /// Single-bit plane steps a lanewise max costs: `2m`.
    pub fn max_bit_steps(&self) -> u64 {
        2 * self.m_bits() as u64
    }

    /// Shift every value `k` lanes toward higher indices: lane `i` of
    /// the result holds lane `i - k` of `self`, and the vacated low
    /// lanes hold zero (the identity of both `+` and unsigned `max`).
    /// This is the neighbor communication step of a Kogge–Stone scan,
    /// done with word-wide shifts on every plane.
    pub fn shift_lanes_up(&self, k: usize) -> Self {
        let w = words_for(self.n);
        let word_off = k / 64;
        let s = (k % 64) as u32;
        let planes = self
            .planes
            .iter()
            .map(|p| {
                let mut out = vec![0u64; w];
                for (j, slot) in out.iter_mut().enumerate().skip(word_off) {
                    let lo = p[j - word_off] << s;
                    let hi = if s > 0 && j > word_off {
                        p[j - word_off - 1] >> (64 - s)
                    } else {
                        0
                    };
                    *slot = lo | hi;
                }
                out
            })
            .collect();
        BitSlicedVec { n: self.n, planes }
    }
}

/// A `PrimitiveScans` backend that runs the two primitive scans in the
/// Connection Machine's *processor-side* style: a Kogge–Stone scan of
/// `⌈lg n⌉` rounds, each round one lanewise bit-sliced `add`/`max` over
/// the whole vector. No tree hardware — this is what the paper's scan
/// primitive replaces, and it is the natural independent fallback when
/// the tree circuit itself is suspected faulty.
///
/// Counts the single-bit plane steps consumed (`m` per add round, `2m`
/// per max round), the bit-serial cost the Table 4 models charge.
#[derive(Debug)]
pub struct BitslicedScans {
    m_bits: u32,
    bit_steps: core::cell::Cell<u64>,
    scans: core::cell::Cell<u64>,
}

impl BitslicedScans {
    /// A backend operating on `m`-bit fields (1..=64).
    ///
    /// # Panics
    /// If `m_bits` is 0 or exceeds 64.
    pub fn new(m_bits: u32) -> Self {
        assert!((1..=64).contains(&m_bits), "field width must be 1..=64");
        BitslicedScans {
            m_bits,
            bit_steps: core::cell::Cell::new(0),
            scans: core::cell::Cell::new(0),
        }
    }

    /// The field width in bits.
    pub fn m_bits(&self) -> u32 {
        self.m_bits
    }

    /// Total single-bit plane steps consumed by all scans so far.
    pub fn bit_steps(&self) -> u64 {
        self.bit_steps.get()
    }

    /// Number of primitive scans executed.
    pub fn scans(&self) -> u64 {
        self.scans.get()
    }

    fn run(&self, max: bool, a: &[u64]) -> Vec<u64> {
        if a.is_empty() {
            return Vec::new();
        }
        let mut x = BitSlicedVec::from_slice(a, self.m_bits);
        let mut d = 1usize;
        while d < a.len() {
            let shifted = x.shift_lanes_up(d);
            let step = if max {
                x.max_bit_steps()
            } else {
                x.add_bit_steps()
            };
            x = if max { x.max(&shifted) } else { x.add(&shifted) };
            self.bit_steps.set(self.bit_steps.get() + step);
            d *= 2;
        }
        self.scans.set(self.scans.get() + 1);
        // Inclusive → exclusive: shift once more, identity enters lane 0.
        x.shift_lanes_up(1).to_vec()
    }
}

impl scan_core::simulate::PrimitiveScans for BitslicedScans {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(false, a)
    }

    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(true, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, m: u32, seed: u64) -> Vec<u64> {
        let mask = if m == 64 { u64::MAX } else { (1 << m) - 1 };
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 17) & mask
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        for n in [0usize, 1, 63, 64, 65, 200] {
            let v = sample(n, 16, 5);
            assert_eq!(BitSlicedVec::from_slice(&v, 16).to_vec(), v);
        }
    }

    #[test]
    fn add_matches_scalar() {
        for m in [1u32, 8, 16, 64] {
            let a = sample(100, m, 1);
            let b = sample(100, m, 2);
            let mask = if m == 64 { u64::MAX } else { (1 << m) - 1 };
            let sa = BitSlicedVec::from_slice(&a, m);
            let sb = BitSlicedVec::from_slice(&b, m);
            let expect: Vec<u64> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| x.wrapping_add(y) & mask)
                .collect();
            assert_eq!(sa.add(&sb).to_vec(), expect, "m={m}");
        }
    }

    #[test]
    fn comparison_and_minmax_match_scalar() {
        for m in [1u32, 4, 12, 32] {
            let a = sample(130, m, 3);
            let b = sample(130, m, 4);
            let sa = BitSlicedVec::from_slice(&a, m);
            let sb = BitSlicedVec::from_slice(&b, m);
            let lt = sa.lt_mask(&sb);
            for i in 0..a.len() {
                let bit = (lt[i / 64] >> (i % 64)) & 1 == 1;
                assert_eq!(bit, a[i] < b[i], "lt lane {i} (m={m})");
            }
            let maxes: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
            let mins: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
            assert_eq!(sa.max(&sb).to_vec(), maxes, "max m={m}");
            assert_eq!(sa.min(&sb).to_vec(), mins, "min m={m}");
        }
    }

    #[test]
    fn logical_ops_and_shift() {
        let a = sample(70, 8, 5);
        let b = sample(70, 8, 6);
        let sa = BitSlicedVec::from_slice(&a, 8);
        let sb = BitSlicedVec::from_slice(&b, 8);
        let ands: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
        let ors: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
        let shls: Vec<u64> = a.iter().map(|&x| (x << 1) & 0xFF).collect();
        assert_eq!(sa.and(&sb).to_vec(), ands);
        assert_eq!(sa.or(&sb).to_vec(), ors);
        assert_eq!(sa.shl1().to_vec(), shls);
    }

    #[test]
    fn bit_step_accounting() {
        let a = BitSlicedVec::from_slice(&[1, 2, 3], 16);
        assert_eq!(a.add_bit_steps(), 16);
        assert_eq!(a.max_bit_steps(), 32);
    }

    #[test]
    fn empty_and_exact_word_boundaries() {
        let e = BitSlicedVec::from_slice(&[], 8);
        assert!(e.is_empty());
        assert!(e.add(&e).to_vec().is_empty());
        let v = sample(128, 8, 7);
        let s = BitSlicedVec::from_slice(&v, 8);
        assert_eq!(s.add(&s).to_vec().len(), 128);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        BitSlicedVec::from_slice(&[256], 8);
    }

    #[test]
    #[should_panic(expected = "lane count mismatch")]
    fn mismatched_lanes_rejected() {
        let a = BitSlicedVec::from_slice(&[1], 8);
        let b = BitSlicedVec::from_slice(&[1, 2], 8);
        a.add(&b);
    }

    #[test]
    fn lane_shift_matches_scalar() {
        for n in [1usize, 5, 63, 64, 65, 130, 200] {
            let v = sample(n, 12, 11);
            let s = BitSlicedVec::from_slice(&v, 12);
            for k in [0usize, 1, 2, 63, 64, 65, 100] {
                let expect: Vec<u64> = (0..n)
                    .map(|i| if i >= k { v[i - k] } else { 0 })
                    .collect();
                assert_eq!(s.shift_lanes_up(k).to_vec(), expect, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn bitsliced_backend_matches_reference_scans() {
        use scan_core::simulate::PrimitiveScans;
        let b = BitslicedScans::new(16);
        for n in [0usize, 1, 2, 7, 64, 65, 200] {
            let v = sample(n, 16, n as u64 + 21);
            let mut plus = Vec::with_capacity(n);
            let mut max = Vec::with_capacity(n);
            let (mut s, mut m) = (0u64, 0u64);
            for &x in &v {
                plus.push(s & 0xFFFF);
                max.push(m);
                s = s.wrapping_add(x);
                m = m.max(x);
            }
            assert_eq!(b.plus_scan(&v), plus, "plus n={n}");
            assert_eq!(b.max_scan(&v), max, "max n={n}");
        }
        assert!(b.scans() >= 12);
        assert!(b.bit_steps() > 0);
    }

    #[test]
    fn bitsliced_backend_counts_kogge_stone_rounds() {
        use scan_core::simulate::PrimitiveScans;
        let b = BitslicedScans::new(8);
        b.plus_scan(&[1; 64]); // 6 rounds × 8 bit steps
        assert_eq!(b.bit_steps(), 48);
        b.max_scan(&[1; 64]); // 6 rounds × 16 bit steps
        assert_eq!(b.bit_steps(), 48 + 96);
        assert_eq!(b.scans(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn bitsliced_backend_rejects_oversized_values() {
        use scan_core::simulate::PrimitiveScans;
        BitslicedScans::new(8).plus_scan(&[256]);
    }
}
