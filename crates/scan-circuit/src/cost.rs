//! Hardware cost accounting (§3.2–§3.3, Table 2).
//!
//! "The total hardware needed for scanning n values is n − 1 shift
//! registers and 2(n − 1) sum state machines. ... only two wires are
//! needed to leave every branch of the tree."

/// Component counts for a scan tree over `n` leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareCost {
    /// Number of leaves (processors served).
    pub n_leaves: usize,
    /// Tree units (`n − 1`).
    pub units: usize,
    /// Sum state machines (`2(n − 1)` — one up, one down per unit).
    pub state_machines: usize,
    /// Shift registers (`n − 1`).
    pub shift_registers: usize,
    /// Total FIFO storage bits (`Σ 2·depth(unit)`).
    pub fifo_bits: usize,
    /// Single-bit unidirectional wires (`2` per tree edge).
    pub wires: usize,
}

impl HardwareCost {
    /// Cost of a scan tree over `n` leaves (power of two).
    ///
    /// # Panics
    /// If `n` is zero or not a power of two.
    pub fn for_leaves(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 1);
        let units = n - 1;
        // Unit k (heap order) is at depth floor(lg k); FIFO length 2·depth.
        let fifo_bits: usize = (1..n).map(|k: usize| 2 * k.ilog2() as usize).sum();
        HardwareCost {
            n_leaves: n,
            units,
            state_machines: 2 * units,
            shift_registers: units,
            // Edges: n leaf edges + (n - 2) internal edges; 2 wires each.
            wires: 2 * (n + units.saturating_sub(1)),
            fifo_bits,
        }
    }

    /// Total circuit size in *components* — sum state machines plus
    /// shift registers, the inventory §3.2 counts ("n − 1 shift
    /// registers and 2(n − 1) sum state machines"). Linear in `n`: the
    /// `O(n)` circuit-size row of Table 2. (The FIFO *storage bits* sum
    /// to `Θ(n lg n)`, tracked separately in [`HardwareCost::fifo_bits`];
    /// a storage bit is far cheaper than a logic component.)
    pub fn size_components(&self) -> usize {
        self.state_machines + self.shift_registers
    }
}

/// The example system of §3.3: 4096 processors, 64 processors per
/// board, 64 boards, one 64-input scan chip per board plus one more
/// combining the boards.
#[derive(Debug, Clone, Copy)]
pub struct ExampleSystem {
    /// Processors in the machine.
    pub processors: usize,
    /// Processors (scan inputs) per board.
    pub per_board: usize,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
}

impl ExampleSystem {
    /// The paper's 4096-processor configuration at a 100 ns clock.
    pub fn paper_config() -> Self {
        ExampleSystem {
            processors: 4096,
            per_board: 64,
            clock_ns: 100.0,
        }
    }

    /// Number of boards.
    pub fn boards(&self) -> usize {
        self.processors / self.per_board
    }

    /// Tree levels handled by one board-level chip (`lg per_board`).
    pub fn levels_per_chip(&self) -> u32 {
        self.per_board.trailing_zeros()
    }

    /// Sum state machines on one chip: a 64-input chip is 6 levels of
    /// the tree, i.e. 63 units → "126 sum state machines and 63 shift
    /// registers".
    pub fn state_machines_per_chip(&self) -> usize {
        2 * (self.per_board - 1)
    }

    /// Shift registers on one chip.
    pub fn shift_registers_per_chip(&self) -> usize {
        self.per_board - 1
    }

    /// Clock cycles for a scan on an `m`-bit field: `m + 2 lg n`.
    pub fn scan_cycles(&self, m_bits: u32) -> u64 {
        m_bits as u64 + 2 * (self.processors.trailing_zeros() as u64)
    }

    /// Wall-clock time of a scan on an `m`-bit field, in microseconds.
    pub fn scan_time_us(&self, m_bits: u32) -> f64 {
        self.scan_cycles(m_bits) as f64 * self.clock_ns / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_component_counts() {
        // "The total hardware needed for scanning n values is n − 1
        // shift registers and 2(n − 1) sum state machines."
        let c = HardwareCost::for_leaves(64);
        assert_eq!(c.units, 63);
        assert_eq!(c.state_machines, 126);
        assert_eq!(c.shift_registers, 63);
    }

    #[test]
    fn fifo_bits_sum() {
        // n = 8: depths 0,1,1,2,2,2,2 → 2·(0+1+1+2+2+2+2) = 20.
        let c = HardwareCost::for_leaves(8);
        assert_eq!(c.fifo_bits, 20);
    }

    #[test]
    fn size_is_linear() {
        // Component count exactly doubles (minus a constant) with n.
        let s16k = HardwareCost::for_leaves(1 << 14).size_components();
        let s32k = HardwareCost::for_leaves(1 << 15).size_components();
        assert_eq!(s16k, 3 * ((1 << 14) - 1));
        assert_eq!(s32k, 3 * ((1 << 15) - 1));
    }

    #[test]
    fn example_system_paper_numbers() {
        let sys = ExampleSystem::paper_config();
        assert_eq!(sys.boards(), 64);
        assert_eq!(sys.levels_per_chip(), 6);
        assert_eq!(sys.state_machines_per_chip(), 126);
        assert_eq!(sys.shift_registers_per_chip(), 63);
        // "If the clock period is 100 nanoseconds, a scan on a 32 bit
        // field would require 5 microseconds."
        let t = sys.scan_time_us(32);
        assert!((t - 5.6).abs() < 0.7, "got {t} µs, paper says ~5 µs");
        // "With a ... 10 nanoseconds clock ... reduced to .5 microseconds."
        let fast = ExampleSystem {
            clock_ns: 10.0,
            ..sys
        };
        let t = fast.scan_time_us(32);
        assert!((t - 0.56).abs() < 0.1, "got {t} µs, paper says ~0.5 µs");
    }

    #[test]
    fn wires_per_subtree_is_two() {
        // The defining property: a subtree is attached by one up and one
        // down wire, so wires grow linearly with nodes, not with cut
        // width.
        let c = HardwareCost::for_leaves(1024);
        assert_eq!(c.wires, 2 * (1024 + 1022));
    }
}
