//! Workspace invariant linter (`cargo xtask lint`).
//!
//! A dependency-free static-analysis pass over the workspace sources,
//! grown from a line linter into a small pipeline:
//!
//! 1. [`lexer`] masks comments and string/char literals so patterns in
//!    prose never fire, preserving columns;
//! 2. [`parse`] turns the masked lines into a token stream with
//!    matched delimiters;
//! 3. [`model`] extracts the item model — functions, calls, panic
//!    sites, `xtask-allow` suppressions — per file;
//! 4. [`graph`] resolves an approximate intra-workspace call graph;
//! 5. [`rules`] runs the rule catalog (R1–R10, see `rules/mod.rs` and
//!    DESIGN.md §16);
//! 6. [`diag`] applies suppressions, renders rustc-style findings,
//!    and serializes the `--json` report consumed by CI.
//!
//! Invariants live here instead of in review comments so they hold by
//! construction: the loom model in `scan_core::sync` is only sound if
//! every atomic lives behind it (R8), the shard executor only survives
//! the planned process split if it stays message-shaped (R9), and the
//! `try_*` degraded-mode contract only means anything if those paths
//! cannot panic (R7).

#![warn(missing_docs)]

mod diag;
mod graph;
mod lexer;
mod manifest;
mod model;
mod parse;
mod rules;
#[cfg(test)]
mod testutil;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use diag::{Report, Severity};
use model::Workspace;

/// The workspace root, resolved from this crate's manifest directory
/// (`crates/xtask` → two levels up).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Run the full pipeline over `root` and return the finished report
/// (sorted, suppressions applied, suppressed findings retained).
fn lint_report(root: &Path) -> Report {
    let ws = Workspace::load(root);
    let mut report = rules::run_all(&ws);
    report.apply_suppressions(&ws);
    report.sort();
    report
}

/// Active (unsuppressed) findings for `root` — the programmatic entry
/// point the seeded-tree tests drive.
#[cfg(test)]
fn lint_root(root: &Path) -> Vec<diag::Violation> {
    lint_report(root)
        .violations
        .into_iter()
        .filter(|v| v.suppressed.is_none())
        .collect()
}

fn main() -> ExitCode {
    let mut cmd = None;
    let mut json = false;
    let mut root = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--json" => json = true,
            _ if root.is_none() && !arg.starts_with('-') => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("usage: cargo xtask lint [--json] [root]");
                return ExitCode::FAILURE;
            }
        }
    }
    if cmd != Some("lint") {
        eprintln!("usage: cargo xtask lint [--json] [root]");
        return ExitCode::FAILURE;
    }

    let root = root.unwrap_or_else(workspace_root);
    let report = lint_report(&root);

    // Human rendering on stderr (the CI problem matcher parses it);
    // the machine report, when asked for, alone on stdout. Warnings
    // are counted here and carried in full by `--json` — the audit
    // trail of panic-reachable index sites would otherwise drown the
    // errors that actually gate.
    for v in report.active().filter(|v| v.severity == Severity::Error) {
        eprintln!("{v}\n");
    }
    if json {
        print!("{}", report.to_json());
    }
    let errors = report
        .active()
        .filter(|v| v.severity == Severity::Error)
        .count();
    let warnings = report
        .active()
        .filter(|v| v.severity == Severity::Warning)
        .count();
    let suppressed = report
        .violations
        .iter()
        .filter(|v| v.suppressed.is_some())
        .count();
    if report.has_errors() {
        eprintln!("xtask lint: {errors} error(s), {warnings} warning(s), {suppressed} suppressed");
        ExitCode::FAILURE
    } else {
        eprintln!("xtask lint: clean ({warnings} warning(s), {suppressed} suppressed)");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{rules, Tree};

    /// The linter's reason to exist: the real workspace carries no
    /// error-severity findings. Unused suppressions are themselves
    /// findings, so this also proves every `xtask-allow` in the tree
    /// still earns its keep — and the only tolerated warnings are the
    /// panic-reachability index audit trail.
    #[test]
    fn lint_repo_is_clean() {
        let vs = lint_root(&workspace_root());
        let errors: Vec<_> = vs.iter().filter(|v| v.severity == Severity::Error).collect();
        assert!(
            errors.is_empty(),
            "workspace lint violations:\n{}",
            errors
                .iter()
                .map(|v| format!("{v}\n"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            vs.iter().all(|v| v.rule == "panic-reachability"),
            "only the index-site audit trail may warn"
        );
    }

    #[test]
    fn suppressed_findings_do_not_fail_but_are_reported() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// xtask-allow: no-raw-clock simulated time source for tests\npub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        assert_eq!(t.lint(), vec![]);
        let report = lint_report(&t.root);
        assert!(!report.has_errors());
        let sup: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.suppressed.is_some())
            .collect();
        assert_eq!(sup.len(), 1);
        assert_eq!(
            sup[0].suppressed.as_deref(),
            Some("simulated time source for tests")
        );
        assert!(report.to_json().contains("\"suppressed\": true"));
    }

    #[test]
    fn unused_suppression_is_an_error() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// xtask-allow: no-raw-clock nothing here actually reads the clock\npub fn f() -> u64 { 1 }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["unused-suppression"]);
    }

    #[test]
    fn malformed_suppression_is_an_error() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// xtask-allow: no-raw-clock\npub fn f() -> u64 { 1 }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["suppression-syntax"]);
        assert!(vs[0].msg.contains("no reason"));
    }

    #[test]
    fn suppression_for_wrong_rule_does_not_mask() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// xtask-allow: no-raw-spawn but this is a clock violation\npub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        let mut names = rules(&t.lint());
        names.sort_unstable();
        assert_eq!(names, vec!["no-raw-clock", "unused-suppression"]);
    }
}
