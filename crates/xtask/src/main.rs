//! `cargo xtask` — repo automation.
//!
//! The one subcommand, `lint`, enforces the soundness invariants that
//! `rustc` cannot express (see DESIGN.md §12):
//!
//! - **R1 `safety-comment`** — every `unsafe` token is immediately
//!   preceded by a `// SAFETY:` comment (attributes and a trailing
//!   same-line comment are allowed in between).
//! - **R2 `unsafe-allowlist`** — `unsafe` appears only in the six
//!   audited kernel modules of `scan-core` (`parallel`, `pool`,
//!   `multi_split`, `ops`, `simd`, `lookback`).
//! - **R3 `no-raw-spawn`** — no `thread::spawn` / `thread::Builder`
//!   outside `pool.rs`: all parallelism funnels through the worker
//!   pool (the loom model) or scoped spawns. Bench binaries and test
//!   modules are exempt.
//! - **R4 `no-raw-clock`** — no `Instant::now` outside `deadline.rs`:
//!   kernel code must take time through the deadline token so tests
//!   can use manual tokens. Bench binaries and test modules are
//!   exempt.
//! - **R5 `crate-lints`** — every crate root off the unsafe allowlist
//!   carries `#![forbid(unsafe_code)]`; `scan-core`'s root carries
//!   `#![deny(unsafe_op_in_unsafe_fn)]`.
//! - **R6 `simd-confinement`** — ISA dispatch stays in `simd.rs`: no
//!   `is_x86_feature_detected!` and no `target_feature` (the
//!   `#[target_feature]` attribute or `cfg(target_feature)`) anywhere
//!   else. Everything downstream consumes the dispatched `SimdTile`
//!   table, so there is exactly one place where "what the CPU supports"
//!   is decided — and one place to audit when a new ISA is added.
//!
//! The scanner is a hand-rolled lexer (no `syn`, no dependencies) that
//! masks out comments, string literals and char literals, so a pattern
//! like `thread::spawn` inside a doc comment or a string never
//! triggers a finding — and conversely, findings are real tokens.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => workspace_root(),
            };
            let violations = lint_root(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [root]");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    let p = PathBuf::from(manifest);
    p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p)
}

/// Files allowed to contain `unsafe` (the audited kernel modules).
const UNSAFE_ALLOWLIST: [&str; 6] = [
    "crates/scan-core/src/parallel.rs",
    "crates/scan-core/src/pool.rs",
    "crates/scan-core/src/multi_split.rs",
    "crates/scan-core/src/ops.rs",
    "crates/scan-core/src/simd.rs",
    "crates/scan-core/src/lookback.rs",
];

/// The files allowed to spawn threads directly: the worker pool and
/// the shard supervisors (which each own a worker pool).
const SPAWN_ALLOWLIST: [&str; 2] = [
    "crates/scan-core/src/pool.rs",
    "crates/scan-shard/src/pool.rs",
];

/// The one file allowed to read the wall clock.
const CLOCK_ALLOWLIST: &str = "crates/scan-core/src/deadline.rs";

/// The one file allowed to detect or gate on CPU features.
const SIMD_ALLOWLIST: &str = "crates/scan-core/src/simd.rs";

/// The crate root that holds `unsafe` and therefore carries
/// `deny(unsafe_op_in_unsafe_fn)` instead of `forbid(unsafe_code)`.
const UNSAFE_CRATE_ROOT: &str = "crates/scan-core/src/lib.rs";

/// A single lint finding.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`safety-comment`, `unsafe-allowlist`, ...).
    pub rule: &'static str,
    /// Path relative to the linted root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Lint every Rust source under `root` and return the findings.
pub fn lint_root(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    for top in ["crates", "src", "shims"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();

    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let lexed = Lexed::new(&src);
        check_file(&rel, &lexed, &mut out);
    }
    check_crate_roots(root, &files, &mut out);
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer: mask comments and literals so rules only see real tokens.
// ---------------------------------------------------------------------------

/// A source file split into per-line *code* (comments and literal
/// contents blanked with spaces) and per-line *comment text*.
pub struct Lexed {
    /// Masked code, one entry per source line.
    pub code: Vec<String>,
    /// Comment text on each line (both `//` and `/* */` forms), with
    /// the comment markers kept; empty if the line has no comment.
    pub comments: Vec<String>,
}

impl Lexed {
    /// Lex `src`, tolerating unterminated constructs (best effort —
    /// the compiler is the authority on malformed input).
    pub fn new(src: &str) -> Self {
        let mut code = vec![String::new()];
        let mut comments = vec![String::new()];
        let b: Vec<char> = src.chars().collect();
        let n = b.len();
        let mut i = 0;

        macro_rules! newline {
            () => {{
                code.push(String::new());
                comments.push(String::new());
            }};
        }
        macro_rules! code_push {
            ($c:expr) => {{
                let c = $c;
                if c == '\n' {
                    newline!();
                } else {
                    code.last_mut().expect("nonempty").push(c);
                }
            }};
        }

        while i < n {
            let c = b[i];
            // Line comment (incl. `///`, `//!`).
            if c == '/' && i + 1 < n && b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    comments.last_mut().expect("nonempty").push(b[i]);
                    code.last_mut().expect("nonempty").push(' ');
                    i += 1;
                }
                continue;
            }
            // Block comment, nested.
            if c == '/' && i + 1 < n && b[i + 1] == '*' {
                let mut depth = 0usize;
                while i < n {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        comments.last_mut().expect("nonempty").push_str("/*");
                        code.last_mut().expect("nonempty").push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        comments.last_mut().expect("nonempty").push_str("*/");
                        code.last_mut().expect("nonempty").push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            newline!();
                        } else {
                            comments.last_mut().expect("nonempty").push(b[i]);
                            code.last_mut().expect("nonempty").push(' ');
                        }
                        i += 1;
                    }
                }
                continue;
            }
            // Raw string r"..." / r#"..."# (and br variants): no escapes.
            if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
                let mut j = i;
                if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                    j += 1;
                }
                if b[j] == 'r' {
                    let mut k = j + 1;
                    let mut hashes = 0usize;
                    while k < n && b[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && b[k] == '"' {
                        for &d in &b[i..=k] {
                            code_push!(if d == '\n' { '\n' } else { ' ' });
                        }
                        i = k + 1;
                        // Scan to `"` followed by `hashes` hashes.
                        while i < n {
                            if b[i] == '"'
                                && i + hashes < n + 1
                                && b[i + 1..].len() >= hashes
                                && b[i + 1..i + 1 + hashes].iter().all(|&h| h == '#')
                            {
                                for _ in 0..=hashes {
                                    code.last_mut().expect("nonempty").push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                            code_push!(if b[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                        continue;
                    }
                }
            }
            // Ordinary string (and b"..."): blank contents, keep quotes.
            if c == '"' {
                code.last_mut().expect("nonempty").push('"');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        code.last_mut().expect("nonempty").push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == '"' {
                        code.last_mut().expect("nonempty").push('"');
                        i += 1;
                        break;
                    }
                    code_push!(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
            // Char literal vs lifetime: `'a'` is a literal, `'a` (no
            // closing quote right after one ident char run) a lifetime.
            if c == '\'' {
                if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal: skip to closing quote.
                    code.last_mut().expect("nonempty").push_str("' ");
                    i += 2;
                    while i < n && b[i] != '\'' {
                        code_push!(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                    if i < n {
                        code.last_mut().expect("nonempty").push('\'');
                        i += 1;
                    }
                    continue;
                }
                if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                    // 'x'
                    code.last_mut().expect("nonempty").push_str("'  ");
                    i += 3;
                    continue;
                }
                // Lifetime (or stray quote): emit as-is.
                code.last_mut().expect("nonempty").push('\'');
                i += 1;
                continue;
            }
            code_push!(c);
            i += 1;
        }
        Lexed { code, comments }
    }

    /// 0-based line numbers whose masked code contains `word` as a
    /// whole token.
    fn lines_with_word(&self, word: &str) -> Vec<usize> {
        (0..self.code.len())
            .filter(|&l| find_word(&self.code[l], word))
            .collect()
    }

    /// 0-based line numbers whose masked code contains `needle` as a
    /// path-ish token (preceding char must not be part of an
    /// identifier).
    fn lines_with_path(&self, needle: &str) -> Vec<usize> {
        (0..self.code.len())
            .filter(|&l| find_path(&self.code[l], needle))
            .collect()
    }

    /// Lines covered by `#[cfg(test)] mod ... { }` regions (0-based,
    /// marked true). Attribute matched by substring `test`, span by
    /// brace counting in masked code.
    fn test_mod_lines(&self) -> Vec<bool> {
        let nl = self.code.len();
        let mut in_test = vec![false; nl];
        let mut l = 0;
        while l < nl {
            let t = self.code[l].trim();
            let is_test_attr = t.starts_with("#[") && t.contains("cfg") && t.contains("test");
            if !is_test_attr {
                l += 1;
                continue;
            }
            // Find the `mod` (skipping further attrs / blanks); bail to
            // normal scanning if this attribute decorates something else.
            let mut m = l + 1;
            let mut found_mod = false;
            while m < nl {
                let tm = self.code[m].trim();
                if tm.is_empty() || tm.starts_with("#[") {
                    m += 1;
                    continue;
                }
                found_mod = tm.starts_with("mod ") || tm.starts_with("pub mod ");
                break;
            }
            if !found_mod {
                l += 1;
                continue;
            }
            // Brace-count from the mod line.
            let mut depth = 0i64;
            let mut opened = false;
            let mut e = m;
            while e < nl {
                for ch in self.code[e].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                in_test[e] = true;
                if opened && depth <= 0 {
                    break;
                }
                e += 1;
            }
            for flag in in_test.iter_mut().take(e.min(nl)).skip(l) {
                *flag = true;
            }
            l = e + 1;
        }
        in_test
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && is_ident(b[i - 1])
}

/// Does `line` contain `word` delimited by non-identifier chars?
fn find_word(line: &str, word: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || chars.len() < w.len() {
        return false;
    }
    for s in 0..=chars.len() - w.len() {
        if chars[s..s + w.len()] == w[..]
            && (s == 0 || !is_ident(chars[s - 1]))
            && (s + w.len() == chars.len() || !is_ident(chars[s + w.len()]))
        {
            return true;
        }
    }
    false
}

/// Does `line` contain `needle` (a `a::b` path fragment) not preceded
/// by an identifier char (so `my_thread::spawn` does not match
/// `thread::spawn`, but `std::thread::spawn` does)?
fn find_path(line: &str, needle: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let w: Vec<char> = needle.chars().collect();
    if w.is_empty() || chars.len() < w.len() {
        return false;
    }
    for s in 0..=chars.len() - w.len() {
        if chars[s..s + w.len()] == w[..] && (s == 0 || !is_ident(chars[s - 1])) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Is this path inside a `src/` tree of a workspace crate (the scope
/// of the spawn/clock rules), excluding `src/bin/` utilities?
fn in_library_src(rel: &str) -> bool {
    (rel.starts_with("crates/") || rel.starts_with("src/"))
        && rel.contains("/src/")
        && !rel.contains("/bin/")
        || rel.starts_with("src/") && !rel.contains("/bin/")
}

fn check_file(rel: &str, lx: &Lexed, out: &mut Vec<Violation>) {
    let unsafe_lines = lx.lines_with_word("unsafe");

    // R2: unsafe allowlist.
    if !UNSAFE_ALLOWLIST.contains(&rel) {
        if let Some(&l) = unsafe_lines.first() {
            out.push(Violation {
                rule: "unsafe-allowlist",
                path: rel.to_string(),
                line: l + 1,
                msg: format!(
                    "`unsafe` outside the audited kernel modules ({})",
                    UNSAFE_ALLOWLIST.join(", ")
                ),
            });
        }
    }

    // R1: every unsafe token is preceded by a SAFETY comment.
    for &l in &unsafe_lines {
        if !has_safety_comment(lx, l) {
            out.push(Violation {
                rule: "safety-comment",
                path: rel.to_string(),
                line: l + 1,
                msg: "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            });
        }
    }

    // R6: ISA dispatch confinement. Strict scope — benches, bins and
    // test modules included: code that wants vectorization goes
    // through the dispatched tile table, never re-detects the CPU.
    if rel != SIMD_ALLOWLIST {
        for pat in ["is_x86_feature_detected", "target_feature"] {
            for &l in &lx.lines_with_word(pat) {
                out.push(Violation {
                    rule: "simd-confinement",
                    path: rel.to_string(),
                    line: l + 1,
                    msg: format!(
                        "`{pat}` outside {SIMD_ALLOWLIST}: consume the dispatched tile table"
                    ),
                });
            }
        }
    }

    // R3/R4 scope: library sources only; test modules exempt.
    if !in_library_src(rel) {
        return;
    }
    let in_test = lx.test_mod_lines();

    if !SPAWN_ALLOWLIST.contains(&rel) {
        for pat in ["thread::spawn", "thread::Builder"] {
            for &l in &lx.lines_with_path(pat) {
                if !in_test[l] {
                    out.push(Violation {
                        rule: "no-raw-spawn",
                        path: rel.to_string(),
                        line: l + 1,
                        msg: format!(
                            "`{pat}` outside {}: use the worker pool",
                            SPAWN_ALLOWLIST.join(", ")
                        ),
                    });
                }
            }
        }
    }

    if rel != CLOCK_ALLOWLIST {
        for &l in &lx.lines_with_path("Instant::now") {
            if !in_test[l] {
                out.push(Violation {
                    rule: "no-raw-clock",
                    path: rel.to_string(),
                    line: l + 1,
                    msg: format!(
                        "`Instant::now` outside {CLOCK_ALLOWLIST}: take time through ScanDeadline"
                    ),
                });
            }
        }
    }
}

/// R1 adjacency: the `unsafe` on 0-based line `l` must have a comment
/// containing `SAFETY:` either on the same line, or on the contiguous
/// comment block directly above (attribute lines in between allowed).
fn has_safety_comment(lx: &Lexed, l: usize) -> bool {
    if lx.comments[l].contains("SAFETY:") {
        return true;
    }
    let mut i = l;
    // Skip attribute-only lines directly above.
    while i > 0 {
        let t = lx.code[i - 1].trim();
        if (t.starts_with("#[") || t.starts_with("#![")) && lx.comments[i - 1].is_empty() {
            i -= 1;
        } else {
            break;
        }
    }
    if i == 0 {
        return false;
    }
    // The line directly above (post-attrs) must carry the comment —
    // either a trailing comment on code, or the bottom of a pure
    // comment block that we then walk upward.
    if lx.comments[i - 1].contains("SAFETY:") {
        return true;
    }
    let mut j = i;
    while j > 0 && lx.code[j - 1].trim().is_empty() && !lx.comments[j - 1].is_empty() {
        if lx.comments[j - 1].contains("SAFETY:") {
            return true;
        }
        j -= 1;
    }
    false
}

/// R5: crate roots carry the right deny/forbid lint attributes.
fn check_crate_roots(root: &Path, files: &[PathBuf], out: &mut Vec<Violation>) {
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let is_root = rel == "src/lib.rs"
            || rel == "src/main.rs"
            || (rel.starts_with("crates/") || rel.starts_with("shims/"))
                && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs"));
        if !is_root {
            continue;
        }
        let Ok(src) = fs::read_to_string(path) else {
            continue;
        };
        let lx = Lexed::new(&src);
        let has = |attr: &str| lx.code.iter().any(|l| l.trim().starts_with(attr));
        if rel == UNSAFE_CRATE_ROOT {
            if !has("#![deny(unsafe_op_in_unsafe_fn)]") {
                out.push(Violation {
                    rule: "crate-lints",
                    path: rel.clone(),
                    line: 1,
                    msg: "crate root with unsafe code must carry #![deny(unsafe_op_in_unsafe_fn)]"
                        .to_string(),
                });
            }
        } else if !has("#![forbid(unsafe_code)]") {
            out.push(Violation {
                rule: "crate-lints",
                path: rel.clone(),
                line: 1,
                msg: "crate root must carry #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // -- lexer ---------------------------------------------------------------

    #[test]
    fn lexer_masks_line_and_block_comments() {
        let lx = Lexed::new("let a = 1; // unsafe here\n/* unsafe\nstill */ let b = 2;\n");
        assert!(!find_word(&lx.code[0], "unsafe"));
        assert!(lx.comments[0].contains("unsafe"));
        assert!(!find_word(&lx.code[1], "unsafe"));
        assert!(find_word(&lx.code[2], "let"));
    }

    #[test]
    fn lexer_masks_string_contents() {
        let lx = Lexed::new(r##"let s = "unsafe thread::spawn"; let r = r#"Instant::now"#;"##);
        let joined = lx.code.join("\n");
        assert!(!joined.contains("unsafe"));
        assert!(!joined.contains("thread::spawn"));
        assert!(!joined.contains("Instant::now"));
        assert!(joined.contains("let s"));
    }

    #[test]
    fn lexer_distinguishes_lifetimes_from_char_literals() {
        let lx = Lexed::new("fn f<'a>(x: &'a str) -> char { 'x' }\nlet c = '\\n';\n");
        assert!(
            lx.code[0].contains("'a"),
            "lifetime preserved: {}",
            lx.code[0]
        );
        assert!(!lx.code[0].contains("'x'"), "char literal masked");
        assert!(!lx.code[1].contains("\\n"));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let lx = Lexed::new("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(find_word(&lx.code[0], "let"));
        assert!(!find_word(&lx.code[0], "still"));
    }

    #[test]
    fn word_and_path_boundaries() {
        assert!(find_word("unsafe {", "unsafe"));
        assert!(!find_word("unsafe_code", "unsafe"));
        assert!(!find_word("an_unsafe", "unsafe"));
        assert!(find_path("std::thread::spawn(f)", "thread::spawn"));
        assert!(!find_path("my_thread::spawn(f)", "thread::spawn"));
    }

    #[test]
    fn test_mod_spans_are_detected() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use super::*;
    fn helper() { std::thread::spawn(|| {}); }
}
fn after() {}
";
        let lx = Lexed::new(src);
        let t = lx.test_mod_lines();
        assert!(!t[0]);
        assert!(t[1] && t[2] && t[4]);
        assert!(!t[6]);
    }

    // -- rules on seeded trees ----------------------------------------------

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A scratch workspace tree; removed on drop.
    struct Tree(PathBuf);

    impl Tree {
        fn new() -> Self {
            let d = std::env::temp_dir().join(format!(
                "xtask-lint-test-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&d).expect("create temp tree");
            Tree(d)
        }

        fn write(&self, rel: &str, contents: &str) {
            let p = self.0.join(rel);
            fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            fs::write(p, contents).expect("write");
        }

        fn lint(&self) -> Vec<Violation> {
            lint_root(&self.0)
        }
    }

    impl Drop for Tree {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_file_passes() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "pub fn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["safety-comment"]);
        assert_eq!(vs[0].line, 1);
    }

    #[test]
    fn safety_comment_above_satisfies_r1() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "// SAFETY: p is valid for writes.\n#[allow(dead_code)]\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn multi_line_safety_block_satisfies_r1() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/ops.rs",
            "// SAFETY: blocks are disjoint and cover 0..n, so each\n// write hits a unique index.\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn non_safety_comment_does_not_satisfy_r1() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/pool.rs",
            "// this is totally fine, trust me\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["safety-comment"]);
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// SAFETY: not actually fine — wrong module.\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["unsafe-allowlist"]);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// unsafe unsafe unsafe\npub const S: &str = \"unsafe { }\";\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn raw_spawn_outside_pool_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["no-raw-spawn"]);
    }

    #[test]
    fn raw_spawn_in_pool_test_mod_or_bin_is_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/pool.rs",
            "pub fn f() { thread::Builder::new(); }\n",
        );
        t.write(
            "crates/demo/src/bin/bench.rs",
            "fn main() { std::thread::spawn(|| {}); }\n",
        );
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::spawn(|| {}).join().unwrap(); }\n}\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn shard_pool_is_the_only_new_spawn_site() {
        // The shard supervisors may spawn (each owns a worker pool);
        // the rest of the scan-shard crate — the executor in
        // particular — must go through them.
        let t = Tree::new();
        t.write(
            "crates/scan-shard/src/pool.rs",
            "pub fn f() { thread::Builder::new(); }\n",
        );
        t.write(
            "crates/scan-shard/src/executor.rs",
            "pub fn f() { std::thread::spawn(|| {}); }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["no-raw-spawn"]);
        assert_eq!(vs[0].path, "crates/scan-shard/src/executor.rs");
    }

    #[test]
    fn raw_clock_outside_deadline_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["no-raw-clock"]);
    }

    #[test]
    fn serving_crate_is_covered_by_spawn_and_clock_confinement() {
        // The serving layer's leader–follower design depends on these
        // rules having no carve-out for it: a dispatcher thread or a
        // raw clock in `scan-service` library code must be caught
        // exactly like anywhere else — its timing flows through
        // `ScanDeadline` tokens and its workforce is the submitters.
        let t = Tree::new();
        t.write(
            "crates/scan-service/src/service.rs",
            "pub fn lead() { std::thread::spawn(|| {}); let _ = std::time::Instant::now(); }\n",
        );
        let mut vs = rules(&t.lint());
        vs.sort_unstable();
        assert_eq!(vs, vec!["no-raw-clock", "no-raw-spawn"]);
    }

    #[test]
    fn simd_dispatch_outside_simd_module_is_flagged() {
        let t = Tree::new();
        // Runtime detection smuggled into an engine module...
        t.write(
            "crates/scan-core/src/parallel.rs",
            "pub fn fast() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n",
        );
        // ...a compile-time gate in a bench binary...
        t.write(
            "crates/demo/src/bin/bench.rs",
            "#[cfg(target_feature = \"avx2\")]\nfn main() {}\n",
        );
        // ...and a `#[target_feature]` kernel outside the dispatch module.
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[target_feature(enable = \"avx2\")]\nfn k() {}\n",
        );
        let mut vs = rules(&t.lint());
        vs.sort_unstable();
        assert_eq!(
            vs,
            vec!["simd-confinement", "simd-confinement", "simd-confinement"]
        );
    }

    #[test]
    fn simd_dispatch_in_simd_module_is_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/simd.rs",
            "#[target_feature(enable = \"avx2\")]\nfn k() {}\npub fn have() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn raw_clock_in_deadline_is_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/deadline.rs",
            "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let t = Tree::new();
        t.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(rules(&t.lint()), vec!["crate-lints"]);
    }

    #[test]
    fn scan_core_root_requires_deny_unsafe_op() {
        let t = Tree::new();
        t.write("crates/scan-core/src/lib.rs", "#![warn(missing_docs)]\n");
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["crate-lints"]);
        assert!(vs[0].msg.contains("unsafe_op_in_unsafe_fn"));
    }

    // -- the real repo ------------------------------------------------------

    #[test]
    fn lint_repo_is_clean() {
        let root = workspace_root();
        // Sanity: we found the actual workspace, not some temp dir.
        assert!(
            root.join("Cargo.toml").exists() && root.join("crates/scan-core").exists(),
            "workspace root not found at {root:?}"
        );
        let vs = lint_root(&root);
        assert!(
            vs.is_empty(),
            "repo has lint violations:\n{}",
            vs.iter().map(|v| format!("  {v}\n")).collect::<String>()
        );
    }
}
