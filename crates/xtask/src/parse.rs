//! Token-tree parser over the masked code.
//!
//! The [`crate::lexer`] produces masked per-line code; this module
//! turns it into a flat token stream with source positions plus a
//! delimiter-matching table, which is all the item model and the call
//! graph need. Tokens are identifiers/numbers and punctuation; the
//! three compound puncts the signature walker cares about (`::`, `->`,
//! `=>`) are fused so that a lone `>` reliably closes a generic-angle
//! context. `>>` is deliberately *not* fused, so `Vec<Vec<u64>>`
//! closes two angles.

use crate::lexer::{is_ident, Lexed};

/// Token classification — just enough structure for the model layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `pub`, `unsafe`, names).
    Ident,
    /// Numeric literal (the lexer leaves digits unmasked).
    Num,
    /// Punctuation, possibly fused (`::`, `->`, `=>`).
    Punct,
}

/// One token of masked code with its 0-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text.
    pub text: String,
    /// 0-based source line.
    pub line: usize,
    /// 0-based source column (chars).
    pub col: usize,
}

impl Tok {
    /// Is this token the identifier `s`?
    pub fn is(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this token the punct `s`?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Tokenize masked per-line code into a flat stream.
pub fn tokenize(code: &[String]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (line_no, line) in code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let n = chars.len();
        let mut i = 0;
        while i < n {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident(c) {
                let start = i;
                while i < n && is_ident(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = if c.is_ascii_digit() {
                    TokKind::Num
                } else {
                    TokKind::Ident
                };
                out.push(Tok {
                    kind,
                    text,
                    line: line_no,
                    col: start,
                });
                continue;
            }
            // Fused puncts the signature walker needs.
            let two: Option<&str> = if i + 1 < n {
                match (c, chars[i + 1]) {
                    (':', ':') => Some("::"),
                    ('-', '>') => Some("->"),
                    ('=', '>') => Some("=>"),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(t) = two {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: t.to_string(),
                    line: line_no,
                    col: i,
                });
                i += 2;
                continue;
            }
            out.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line: line_no,
                col: i,
            });
            i += 1;
        }
    }
    out
}

/// For every `(`/`[`/`{` token, the index of its matching closer (and
/// vice versa). Unbalanced delimiters are left `None` — the compiler
/// is the authority on malformed input.
pub fn match_delims(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut mat = vec![None; toks.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || t.text.len() != 1 {
            continue;
        }
        let c = t.text.chars().next().expect("nonempty punct");
        match c {
            '(' | '[' | '{' => stack.push((c, i)),
            ')' | ']' | '}' => {
                let open = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                // Pop to the nearest matching opener, tolerating junk.
                while let Some(&(oc, oi)) = stack.last() {
                    stack.pop();
                    if oc == open {
                        mat[oi] = Some(i);
                        mat[i] = Some(oi);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    mat
}

/// Starting at `toks[start]` (which must be just after a fn name or
/// generic intro), find the index of the first token matching `pred`
/// at angle-depth 0, stopping early at `stop` tokens. `->`/`=>` are
/// fused by the tokenizer, so `<`/`>` counting is reliable in
/// signature position.
pub fn find_at_angle_depth0(
    toks: &[Tok],
    start: usize,
    pred: impl Fn(&Tok) -> bool,
    stop: impl Fn(&Tok) -> bool,
) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if depth == 0 && pred(t) {
            return Some(i);
        }
        if depth == 0 && stop(t) {
            return None;
        }
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth = (depth - 1).max(0);
        }
        i += 1;
    }
    None
}

/// Build the full parse for one file.
pub struct Parsed {
    /// Flat token stream.
    pub toks: Vec<Tok>,
    /// Delimiter matching table (same indexing as `toks`).
    pub mat: Vec<Option<usize>>,
}

impl Parsed {
    /// Parse the masked code of `lx`.
    pub fn new(lx: &Lexed) -> Self {
        let toks = tokenize(&lx.code);
        let mat = match_delims(&toks);
        Parsed { toks, mat }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&Lexed::new(src).code)
    }

    #[test]
    fn tokenizer_fuses_paths_and_arrows() {
        let t = toks("fn f(x: u32) -> Vec<u64> { a::b(x) }");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"->"));
        assert!(texts.contains(&"::"));
        // `>` stays single so nested generics close one level at a time.
        let t2 = toks("fn g() -> Vec<Vec<u64>> {}");
        let gt: Vec<&Tok> = t2.iter().filter(|t| t.is_punct(">")).collect();
        assert_eq!(gt.len(), 2);
    }

    #[test]
    fn delimiters_match_across_lines() {
        let t = toks("fn f(\n  x: u32,\n) {\n  g(x);\n}\n");
        let mat = match_delims(&t);
        let open = t.iter().position(|t| t.is_punct("{")).expect("open brace");
        let close = mat[open].expect("matched");
        assert!(t[close].is_punct("}"));
        assert_eq!(t[close].line, 4);
    }

    #[test]
    fn angle_depth_walk_skips_generic_parens() {
        // The param `(` of f is *after* the Fn(...) inside generics.
        let t = toks("fn f<F: Fn(u32) -> u32>(g: F) -> u32 { g(1) }");
        let name = t.iter().position(|t| t.is("f")).expect("name");
        let popen = find_at_angle_depth0(
            &t,
            name + 1,
            |t| t.is_punct("("),
            |t| t.is_punct(";") || t.is_punct("{"),
        )
        .expect("param open");
        // The found `(` must be the one before `g: F`.
        assert!(t[popen + 1].is("g"));
    }

    #[test]
    fn positions_are_zero_based_and_column_exact() {
        let t = toks("  let x = 1;\n");
        assert_eq!(t[0].text, "let");
        assert_eq!((t[0].line, t[0].col), (0, 2));
        assert_eq!(t[1].text, "x");
        assert_eq!(t[1].col, 6);
    }
}
