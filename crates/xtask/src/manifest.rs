//! Minimal Cargo manifest reading for the `crate-lints` rule.
//!
//! Since the `[workspace.lints]` table pins shared lint levels once,
//! a crate root may satisfy the `crate-lints` rule either with source
//! attributes or by inheriting (`[lints] workspace = true`) a
//! workspace table that sets `unsafe_code = "forbid"`. This is a
//! line-oriented scan of exactly those shapes — not a TOML parser; the
//! build is the authority on manifest syntax.

use std::collections::HashSet;
use std::fs;
use std::path::Path;

/// What lint configuration the manifests contribute.
#[derive(Debug, Default)]
pub struct LintInheritance {
    /// Root `[workspace.lints.rust]` sets `unsafe_code = "forbid"`.
    pub workspace_forbids_unsafe: bool,
    /// Crate directories (repo-relative, e.g. `crates/scan-fault`)
    /// whose manifest has `[lints] workspace = true`.
    pub inheriting: HashSet<String>,
}

impl LintInheritance {
    /// Scan the root manifest and every `crates/*`, `shims/*` manifest
    /// (plus the root package itself).
    pub fn load(root: &Path) -> Self {
        let mut out = LintInheritance::default();
        if let Ok(top) = fs::read_to_string(root.join("Cargo.toml")) {
            out.workspace_forbids_unsafe = section_has(
                &top,
                "workspace.lints.rust",
                "unsafe_code",
                "forbid",
            );
            if section_has_flag(&top, "lints", "workspace") {
                out.inheriting.insert(".".to_string());
            }
        }
        for parent in ["crates", "shims"] {
            let Ok(entries) = fs::read_dir(root.join(parent)) else {
                continue;
            };
            for e in entries.flatten() {
                let m = e.path().join("Cargo.toml");
                let Ok(text) = fs::read_to_string(&m) else {
                    continue;
                };
                if section_has_flag(&text, "lints", "workspace") {
                    let name = e.file_name().to_string_lossy().to_string();
                    out.inheriting.insert(format!("{parent}/{name}"));
                }
            }
        }
        out
    }

    /// Does the crate owning `root_rel_source` (e.g.
    /// `crates/scan-fault/src/lib.rs`) inherit workspace lints that
    /// forbid unsafe code?
    pub fn root_inherits_forbid_unsafe(&self, root_rel_source: &str) -> bool {
        if !self.workspace_forbids_unsafe {
            return false;
        }
        let dir = if root_rel_source.starts_with("src/") {
            "."
        } else {
            // crates/<name>/src/... -> crates/<name>
            let mut it = root_rel_source.split('/');
            match (it.next(), it.next()) {
                (Some(a), Some(b)) => return self.inheriting.contains(&format!("{a}/{b}")),
                _ => return false,
            }
        };
        self.inheriting.contains(dir)
    }
}

/// Does `[section]` contain `key = "value"`?
fn section_has(toml: &str, section: &str, key: &str, value: &str) -> bool {
    in_section_lines(toml, section).any(|l| {
        let mut parts = l.splitn(2, '=');
        let k = parts.next().unwrap_or("").trim();
        let v = parts.next().unwrap_or("").trim();
        k == key && v.trim_matches('"') == value
    })
}

/// Does `[section]` contain `key = true`?
fn section_has_flag(toml: &str, section: &str, key: &str) -> bool {
    in_section_lines(toml, section).any(|l| {
        let mut parts = l.splitn(2, '=');
        let k = parts.next().unwrap_or("").trim();
        let v = parts.next().unwrap_or("").trim();
        k == key && v == "true"
    })
}

/// Lines inside `[section]`, stopping at the next header.
fn in_section_lines<'a>(toml: &'a str, section: &'a str) -> impl Iterator<Item = &'a str> {
    let mut active = false;
    toml.lines().filter_map(move |raw| {
        let line = raw.trim();
        if line.starts_with('[') {
            active = line == format!("[{section}]");
            return None;
        }
        if active && !line.is_empty() && !line.starts_with('#') {
            Some(line)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_scanning_finds_keys() {
        let toml = "[package]\nname = \"x\"\n\n[workspace.lints.rust]\nunsafe_code = \"forbid\"\nmissing_docs = \"warn\"\n\n[lints]\nworkspace = true\n";
        assert!(section_has(toml, "workspace.lints.rust", "unsafe_code", "forbid"));
        assert!(!section_has(toml, "workspace.lints.rust", "unsafe_code", "deny"));
        assert!(section_has_flag(toml, "lints", "workspace"));
        assert!(!section_has_flag(toml, "package", "workspace"));
    }

    #[test]
    fn missing_sections_are_not_matched() {
        let toml = "[package]\nname = \"x\"\nworkspace = true\n";
        assert!(!section_has_flag(toml, "lints", "workspace"));
    }
}
