//! The item model: what the rules reason about.
//!
//! Built on the masked token stream ([`crate::parse`]), this extracts
//! an approximate per-file model — functions (name, visibility, body
//! span, containing `impl` type), call references, panic-capable
//! expression sites, and `// xtask-allow:` suppressions — plus the
//! workspace aggregate the call graph is resolved over.
//!
//! Approximation notes (see DESIGN.md §16): items are recognized
//! syntactically, not semantically. Nested functions attribute their
//! body to the innermost enclosing `fn`; closures attribute to the
//! function that contains them; macro-generated items are invisible.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::Lexed;
use crate::parse::{find_at_angle_depth0, Parsed, TokKind};

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub`.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`.
    Qualified,
    /// Plain `pub` — part of the workspace API surface.
    Pub,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 0-based line of the `fn` token.
    pub line: usize,
    /// 0-based column of the name token.
    pub col: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body: `(open_brace, close_brace)` indices,
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// `Some(TypeName)` when defined inside `impl TypeName` /
    /// `impl Trait for TypeName`.
    pub self_ty: Option<String>,
    /// Defined inside a `#[cfg(test)] mod` region.
    pub is_test: bool,
    /// Body mentions `catch_unwind` — treated as a panic-containment
    /// boundary by the reachability rule.
    pub has_catch_unwind: bool,
}

/// Why an expression can panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// Slice/array index expression `x[i]` (panics when out of range).
    Index,
}

/// A panic-capable expression inside some function body.
#[derive(Debug)]
pub struct PanicSite {
    /// Index into [`FileModel::fns`] of the containing function.
    pub fn_idx: usize,
    /// Why it can panic.
    pub kind: PanicKind,
    /// 0-based line.
    pub line: usize,
    /// 0-based column.
    pub col: usize,
    /// The offending token text (e.g. the indexed expression head).
    pub what: String,
}

/// A call reference inside some function body.
#[derive(Debug)]
pub struct Call {
    /// Index into [`FileModel::fns`] of the calling function.
    pub fn_idx: usize,
    /// Callee name (last path segment).
    pub name: String,
    /// Path qualifier directly before the name (`Vec` in `Vec::new`,
    /// `ops` in `ops::try_add`), if any.
    pub qual: Option<String>,
    /// `true` for `.name(...)` method-call syntax.
    pub method: bool,
}

/// An inline `// xtask-allow: <rule> <reason>` suppression.
#[derive(Debug)]
pub struct Suppression {
    /// Rule name the suppression targets.
    pub rule: String,
    /// Free-text justification (required).
    pub reason: String,
    /// 0-based line of the comment itself.
    pub line: usize,
    /// 0-based line the suppression guards (the comment's own line for
    /// trailing comments, else the next line carrying code).
    pub target: usize,
}

/// Everything the rules know about one source file.
pub struct FileModel {
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// Masked lines.
    pub lexed: Lexed,
    /// Token stream + delimiter matching.
    pub parsed: Parsed,
    /// Per-line test-module membership.
    pub in_test: Vec<bool>,
    /// Functions, in source order.
    pub fns: Vec<FnItem>,
    /// Call references in non-test function bodies.
    pub calls: Vec<Call>,
    /// Panic-capable sites in non-test function bodies.
    pub panic_sites: Vec<PanicSite>,
    /// Parsed suppressions (syntax errors surface as violations).
    pub suppressions: Vec<Suppression>,
    /// Lines carrying a malformed `xtask-allow` comment.
    pub bad_suppressions: Vec<(usize, String)>,
}

/// The workspace aggregate.
pub struct Workspace {
    /// Linted root.
    pub root: PathBuf,
    /// All models, sorted by path.
    pub files: Vec<FileModel>,
}

/// Keywords that look like call heads but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "trait", "struct", "enum", "union", "mod", "use",
    "pub", "crate", "super", "self", "Self", "where", "unsafe", "async", "await", "dyn", "const",
    "static", "type", "extern",
];

/// Macros whose expansion panics unconditionally.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl FileModel {
    /// Build the model for one file.
    pub fn new(rel: String, src: &str) -> Self {
        let lexed = Lexed::new(src);
        let parsed = Parsed::new(&lexed);
        let in_test = lexed.test_mod_lines();
        let fns = extract_fns(&parsed, &in_test);
        let (calls, panic_sites) = extract_calls_and_sites(&parsed, &fns);
        let (suppressions, bad_suppressions) = extract_suppressions(&lexed);
        FileModel {
            rel,
            lexed,
            parsed,
            in_test,
            fns,
            calls,
            panic_sites,
            suppressions,
            bad_suppressions,
        }
    }

    /// The crate-ish component this file belongs to (`scan-core` for
    /// `crates/scan-core/src/...`, `root` for `src/...`, the shim name
    /// for `shims/...`).
    pub fn crate_name(&self) -> &str {
        crate_of(&self.rel)
    }

    /// The file stem (`pool` for `.../pool.rs`) — the module name for
    /// qualifier-based call resolution.
    pub fn stem(&self) -> &str {
        self.rel
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("")
    }
}

/// Crate-ish component of a repo-relative path.
pub fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") | Some("shims") => parts.next().unwrap_or("?"),
        Some("src") => "root",
        _ => "?",
    }
}

/// Collect `.rs` files under the conventional top-level dirs.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

impl Workspace {
    /// Load and model every Rust source under `root`.
    pub fn load(root: &Path) -> Self {
        let mut paths = Vec::new();
        for top in ["crates", "src", "shims"] {
            collect_rs(&root.join(top), &mut paths);
        }
        paths.sort();
        let mut files = Vec::new();
        for path in &paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(src) = fs::read_to_string(path) else {
                continue;
            };
            files.push(FileModel::new(rel, &src));
        }
        Workspace {
            root: root.to_path_buf(),
            files,
        }
    }
}

/// Extract `fn` items (with impl context) from the token stream.
fn extract_fns(parsed: &Parsed, in_test: &[bool]) -> Vec<FnItem> {
    let toks = &parsed.toks;
    let mat = &parsed.mat;

    // Impl contexts: (body_open, body_close, self_ty).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is("impl") {
            continue;
        }
        // Walk to the body `{` at angle-depth 0; remember the last
        // ident seen at depth 0 (after `for`, if present) — that path
        // segment is the self type. `impl Trait for Type {` and
        // `impl<T> Type<T> {` both land on `Type`.
        let Some(open) = find_at_angle_depth0(
            toks,
            i + 1,
            |t| t.is_punct("{"),
            |t| t.is_punct(";"),
        ) else {
            continue;
        };
        let mut ty: Option<&str> = None;
        let mut depth = 0i64;
        let mut after_for = false;
        for t in &toks[i + 1..open] {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth = (depth - 1).max(0);
            } else if depth == 0 && t.is("for") {
                after_for = true;
                ty = None;
            } else if depth == 0 && t.kind == TokKind::Ident && !t.is("where") && !t.is("dyn") {
                // Last depth-0 segment wins; after `for` we restart.
                let _ = after_for;
                ty = Some(&t.text);
            }
        }
        if let (Some(ty), Some(close)) = (ty, mat[open]) {
            impls.push((open, close, ty.to_string()));
        }
    }

    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is("fn") {
            i += 1;
            continue;
        }
        // A definition has an identifier name right after `fn`
        // (function-pointer types `fn(u32)` do not).
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();

        // Visibility: look back over at most 8 tokens of qualifiers.
        let mut vis = Vis::Private;
        let lo = i.saturating_sub(8);
        let mut j = i;
        while j > lo {
            j -= 1;
            let t = &toks[j];
            if t.is("pub") {
                // `pub` directly, or `pub(...)`?
                vis = if toks.get(j + 1).is_some_and(|n| n.is_punct("(")) {
                    Vis::Qualified
                } else {
                    Vis::Pub
                };
                break;
            }
            // Qualifier tokens that may sit between `pub` and `fn`.
            let keeps_looking = t.is("unsafe")
                || t.is("const")
                || t.is("async")
                || t.is("extern")
                || t.is_punct("\"")
                || t.is_punct(")")
                || t.is_punct("(")
                || t.is("crate")
                || t.is("super")
                || t.is("in");
            if !keeps_looking {
                break;
            }
        }

        // Param list: first `(` at angle-depth 0 (generics may contain
        // `Fn(..)` parens, which sit at depth > 0).
        let Some(popen) = find_at_angle_depth0(
            toks,
            i + 2,
            |t| t.is_punct("("),
            |t| t.is_punct(";") || t.is_punct("{"),
        ) else {
            i += 1;
            continue;
        };
        let Some(pclose) = mat[popen] else {
            i += 1;
            continue;
        };
        // Body `{` or declaration `;` at angle-depth 0 after params.
        let body = match find_at_angle_depth0(
            toks,
            pclose + 1,
            |t| t.is_punct("{") || t.is_punct(";"),
            |_| false,
        ) {
            Some(b) if toks[b].is_punct("{") => mat[b].map(|c| (b, c)),
            _ => None,
        };

        let self_ty = impls
            .iter()
            .filter(|(o, c, _)| *o < i && i < *c)
            .max_by_key(|(o, _, _)| *o)
            .map(|(_, _, ty)| ty.clone());

        let has_catch_unwind = body.is_some_and(|(b, c)| {
            toks[b..=c.min(toks.len() - 1)]
                .iter()
                .any(|t| t.is("catch_unwind"))
        });

        let line = toks[i].line;
        fns.push(FnItem {
            name,
            vis,
            line,
            col: name_tok.col,
            fn_tok: i,
            body,
            self_ty,
            is_test: in_test.get(line).copied().unwrap_or(false),
            has_catch_unwind,
        });
        // Continue after the signature; nested fns are still found.
        i = popen;
    }
    fns
}

/// Innermost function whose body contains token index `ti`.
fn owner_of(fns: &[FnItem], ti: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (k, f) in fns.iter().enumerate() {
        if let Some((b, c)) = f.body {
            if b < ti && ti < c {
                // Innermost = latest-starting body containing ti.
                if best.is_none_or(|prev| fns[prev].body.expect("has body").0 < b) {
                    best = Some(k);
                }
            }
        }
    }
    best
}

/// Extract call references and panic sites from non-test fn bodies.
fn extract_calls_and_sites(parsed: &Parsed, fns: &[FnItem]) -> (Vec<Call>, Vec<PanicSite>) {
    let toks = &parsed.toks;
    let mut calls = Vec::new();
    let mut sites = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        let Some(fn_idx) = owner_of(fns, i) else {
            continue;
        };
        if fns[fn_idx].is_test {
            continue;
        }

        // Panic-family macro: `name ! (` / `name ! [` / `name ! {`.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            sites.push(PanicSite {
                fn_idx,
                kind: PanicKind::Macro,
                line: t.line,
                col: t.col,
                what: format!("{}!", t.text),
            });
            continue;
        }

        // Index expression: `[` whose previous token ends a value
        // (identifier, `)`, or `]`). `#[attr]`, `vec![..]`, types
        // like `&[u8]` and array literals are all preceded by
        // non-value tokens and skipped.
        if t.is_punct("[") && i > 0 {
            let p = &toks[i - 1];
            let value_end = (p.kind == TokKind::Ident
                && !KEYWORDS.contains(&p.text.as_str()))
                || p.is_punct(")")
                || p.is_punct("]");
            if value_end {
                sites.push(PanicSite {
                    fn_idx,
                    kind: PanicKind::Index,
                    line: t.line,
                    col: t.col,
                    what: format!(
                        "{}[..]",
                        if p.kind == TokKind::Ident { &p.text } else { "_" }
                    ),
                });
            }
            continue;
        }

        // Call heads: `name (` possibly with a path/method prefix, or
        // `name ::<turbofish> (`.
        if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let mut call_paren = None;
        if let Some(n) = toks.get(i + 1) {
            if n.is_punct("(") {
                call_paren = Some(i + 1);
            } else if n.is_punct("::") && toks.get(i + 2).is_some_and(|a| a.is_punct("<")) {
                // Turbofish: find the `(` right after the matching `>`.
                let mut depth = 0i64;
                let mut k = i + 2;
                while k < toks.len() {
                    if toks[k].is_punct("<") {
                        depth += 1;
                    } else if toks[k].is_punct(">") {
                        depth -= 1;
                        if depth == 0 {
                            if toks.get(k + 1).is_some_and(|a| a.is_punct("(")) {
                                call_paren = Some(k + 1);
                            }
                            break;
                        }
                    } else if toks[k].is_punct(";") || toks[k].is_punct("{") {
                        break;
                    }
                    k += 1;
                }
            }
        }
        let Some(_paren) = call_paren else {
            continue;
        };
        // Skip definitions (`fn name(`).
        if i > 0 && toks[i - 1].is("fn") {
            continue;
        }
        let method = i > 0 && toks[i - 1].is_punct(".");
        let qual = if !method && i >= 2 && toks[i - 1].is_punct("::") {
            let q = &toks[i - 2];
            if q.kind == TokKind::Ident {
                Some(q.text.clone())
            } else {
                None
            }
        } else {
            None
        };

        // `.unwrap()` / `.expect(..)` are panic sites, not edges.
        if method && (t.text == "unwrap" || t.text == "expect") {
            sites.push(PanicSite {
                fn_idx,
                kind: if t.text == "unwrap" {
                    PanicKind::Unwrap
                } else {
                    PanicKind::Expect
                },
                line: t.line,
                col: t.col,
                what: format!(".{}()", t.text),
            });
            continue;
        }

        calls.push(Call {
            fn_idx,
            name: t.text.clone(),
            qual,
            method,
        });
    }
    (calls, sites)
}

/// Parse `// xtask-allow: <rule> <reason>` comments.
fn extract_suppressions(lx: &Lexed) -> (Vec<Suppression>, Vec<(usize, String)>) {
    const MARKER: &str = "xtask-allow:";
    let mut out = Vec::new();
    let mut bad = Vec::new();
    for (l, comment) in lx.comments.iter().enumerate() {
        // The marker must open the comment (`// xtask-allow: ...`) —
        // prose *about* the mechanism, like this sentence, is inert.
        let text = comment.trim_start_matches(['/', '!', '*']).trim_start();
        if !text.starts_with(MARKER) {
            continue;
        }
        let rest = text[MARKER.len()..].trim();
        let mut it = rest.splitn(2, char::is_whitespace);
        let rule = it.next().unwrap_or("").trim();
        let reason = it.next().unwrap_or("").trim();
        if rule.is_empty() {
            bad.push((l, "missing rule name".to_string()));
            continue;
        }
        if reason.is_empty() {
            bad.push((
                l,
                format!("suppression of `{rule}` has no reason — justify it"),
            ));
            continue;
        }
        // Trailing comment guards its own line; a standalone comment
        // guards the next line that carries code.
        let own_line_has_code = !lx.code[l].trim().is_empty();
        let target = if own_line_has_code {
            l
        } else {
            let mut t = l + 1;
            while t < lx.code.len() && lx.code[t].trim().is_empty() {
                t += 1;
            }
            t
        };
        out.push(Suppression {
            rule: rule.to_string(),
            reason: reason.to_string(),
            line: l,
            target,
        });
    }
    (out, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::new("crates/demo/src/lib.rs".to_string(), src)
    }

    #[test]
    fn fn_items_carry_visibility_and_body() {
        let m = model(
            "pub fn a() {}\npub(crate) fn b() {}\nfn c();\npub unsafe fn d() { body(); }\n",
        );
        let names: Vec<(&str, Vis, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.vis, f.body.is_some()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a", Vis::Pub, true),
                ("b", Vis::Qualified, true),
                ("c", Vis::Private, false),
                ("d", Vis::Pub, true),
            ]
        );
    }

    #[test]
    fn impl_methods_get_self_type() {
        let m = model(
            "struct Foo;\nimpl Foo { pub fn new() -> Foo { Foo } }\nimpl Clone for Foo { fn clone(&self) -> Foo { Foo } }\n",
        );
        let new = m.fns.iter().find(|f| f.name == "new").expect("new");
        assert_eq!(new.self_ty.as_deref(), Some("Foo"));
        let clone = m.fns.iter().find(|f| f.name == "clone").expect("clone");
        assert_eq!(clone.self_ty.as_deref(), Some("Foo"));
    }

    #[test]
    fn calls_and_panic_sites_are_extracted() {
        let m = model(
            "pub fn try_f(v: &[u64]) -> u64 {\n    helper(v);\n    v.iter().max().unwrap();\n    let x = v[0];\n    other::g();\n    panic!(\"no\");\n    x\n}\n",
        );
        let call_names: Vec<&str> = m.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(call_names.contains(&"helper"));
        assert!(call_names.contains(&"g"));
        let kinds: Vec<PanicKind> = m.panic_sites.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Index));
        assert!(kinds.contains(&PanicKind::Macro));
    }

    #[test]
    fn index_heuristic_skips_attrs_types_and_macros() {
        let m = model(
            "#[derive(Debug)]\npub fn f(v: &[u64], w: [u64; 2]) -> Vec<u64> {\n    let x = vec![1, 2];\n    x\n}\n",
        );
        assert!(
            m.panic_sites.is_empty(),
            "false index sites: {:?}",
            m.panic_sites
        );
    }

    #[test]
    fn test_mod_bodies_are_excluded() {
        let m = model(
            "pub fn real() { ok(); }\n#[cfg(test)]\nmod tests {\n    fn t() { boom().unwrap(); }\n}\n",
        );
        assert!(m.panic_sites.is_empty());
        assert_eq!(m.calls.len(), 1);
        assert_eq!(m.calls[0].name, "ok");
    }

    #[test]
    fn catch_unwind_marks_containment() {
        let m = model(
            "fn contained() { let _ = std::panic::catch_unwind(|| risky()); }\nfn plain() { risky(); }\n",
        );
        assert!(m.fns[0].has_catch_unwind);
        assert!(!m.fns[1].has_catch_unwind);
    }

    #[test]
    fn suppressions_parse_with_rule_and_reason() {
        let m = model(
            "// xtask-allow: no-raw-clock bench needs wall time\nfn f() {}\nlet x = 1; // xtask-allow: unsafe-allowlist audited separately\n// xtask-allow: broken-rule\n",
        );
        assert_eq!(m.suppressions.len(), 2);
        assert_eq!(m.suppressions[0].rule, "no-raw-clock");
        assert_eq!(m.suppressions[0].target, 1);
        assert_eq!(m.suppressions[1].target, 2);
        assert_eq!(m.bad_suppressions.len(), 1);
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let m = model("fn f() { let v = collect::<Vec<u64>>(it); }\n");
        assert!(m.calls.iter().any(|c| c.name == "collect"));
    }
}
