//! The masking lexer: the foundation every rule sees source through.
//!
//! A file is split into per-line *code* (comments and literal contents
//! blanked with spaces, so columns are preserved) and per-line
//! *comment text*. A pattern like `thread::spawn` inside a doc comment
//! or a string therefore never triggers a finding — and conversely,
//! findings are real tokens at real columns.

use std::fmt;

/// A source file split into per-line *code* (comments and literal
/// contents blanked with spaces) and per-line *comment text*.
pub struct Lexed {
    /// Masked code, one entry per source line. Masking replaces each
    /// masked character with a space, so column positions survive.
    pub code: Vec<String>,
    /// Comment text on each line (both `//` and `/* */` forms), with
    /// the comment markers kept; empty if the line has no comment.
    pub comments: Vec<String>,
}

impl Lexed {
    /// Lex `src`, tolerating unterminated constructs (best effort —
    /// the compiler is the authority on malformed input).
    pub fn new(src: &str) -> Self {
        let mut code = vec![String::new()];
        let mut comments = vec![String::new()];
        let b: Vec<char> = src.chars().collect();
        let n = b.len();
        let mut i = 0;

        macro_rules! newline {
            () => {{
                code.push(String::new());
                comments.push(String::new());
            }};
        }
        macro_rules! code_push {
            ($c:expr) => {{
                let c = $c;
                if c == '\n' {
                    newline!();
                } else {
                    code.last_mut().expect("nonempty").push(c);
                }
            }};
        }

        while i < n {
            let c = b[i];
            // Line comment (incl. `///`, `//!`).
            if c == '/' && i + 1 < n && b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    comments.last_mut().expect("nonempty").push(b[i]);
                    code.last_mut().expect("nonempty").push(' ');
                    i += 1;
                }
                continue;
            }
            // Block comment, nested.
            if c == '/' && i + 1 < n && b[i + 1] == '*' {
                let mut depth = 0usize;
                while i < n {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        comments.last_mut().expect("nonempty").push_str("/*");
                        code.last_mut().expect("nonempty").push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        comments.last_mut().expect("nonempty").push_str("*/");
                        code.last_mut().expect("nonempty").push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            newline!();
                        } else {
                            comments.last_mut().expect("nonempty").push(b[i]);
                            code.last_mut().expect("nonempty").push(' ');
                        }
                        i += 1;
                    }
                }
                continue;
            }
            // Raw string r"..." / r#"..."# (and br variants): no escapes.
            if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
                let mut j = i;
                if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                    j += 1;
                }
                if b[j] == 'r' {
                    let mut k = j + 1;
                    let mut hashes = 0usize;
                    while k < n && b[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && b[k] == '"' {
                        for &d in &b[i..=k] {
                            code_push!(if d == '\n' { '\n' } else { ' ' });
                        }
                        i = k + 1;
                        // Scan to `"` followed by `hashes` hashes.
                        while i < n {
                            if b[i] == '"'
                                && i + hashes < n + 1
                                && b[i + 1..].len() >= hashes
                                && b[i + 1..i + 1 + hashes].iter().all(|&h| h == '#')
                            {
                                for _ in 0..=hashes {
                                    code.last_mut().expect("nonempty").push(' ');
                                }
                                i += 1 + hashes;
                                break;
                            }
                            code_push!(if b[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                        continue;
                    }
                }
            }
            // Ordinary string (and b"..."): blank contents, keep quotes.
            if c == '"' {
                code.last_mut().expect("nonempty").push('"');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        code.last_mut().expect("nonempty").push_str("  ");
                        i += 2;
                        continue;
                    }
                    if b[i] == '"' {
                        code.last_mut().expect("nonempty").push('"');
                        i += 1;
                        break;
                    }
                    code_push!(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
            // Char literal vs lifetime: `'a'` is a literal, `'a` (no
            // closing quote right after one ident char run) a lifetime.
            if c == '\'' {
                if i + 1 < n && b[i + 1] == '\\' {
                    // Escaped char literal: skip to closing quote.
                    code.last_mut().expect("nonempty").push_str("' ");
                    i += 2;
                    while i < n && b[i] != '\'' {
                        code_push!(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                    if i < n {
                        code.last_mut().expect("nonempty").push('\'');
                        i += 1;
                    }
                    continue;
                }
                if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                    // 'x'
                    code.last_mut().expect("nonempty").push_str("'  ");
                    i += 3;
                    continue;
                }
                // Lifetime (or stray quote): emit as-is.
                code.last_mut().expect("nonempty").push('\'');
                i += 1;
                continue;
            }
            code_push!(c);
            i += 1;
        }
        Lexed { code, comments }
    }

    /// 0-based `(line, col)` of every occurrence of `word` as a whole
    /// token in the masked code.
    pub fn word_spans(&self, word: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, line) in self.code.iter().enumerate() {
            if let Some(c) = find_word(line, word) {
                out.push((l, c));
            }
        }
        out
    }

    /// 0-based `(line, col)` of every occurrence of `needle` as a
    /// path-ish token (preceding char must not be part of an
    /// identifier).
    pub fn path_spans(&self, needle: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, line) in self.code.iter().enumerate() {
            if let Some(c) = find_path(line, needle) {
                out.push((l, c));
            }
        }
        out
    }

    /// Lines covered by `#[cfg(test)] mod ... { }` regions (0-based,
    /// marked true). Attribute matched by substring `test`, span by
    /// brace counting in masked code.
    pub fn test_mod_lines(&self) -> Vec<bool> {
        let nl = self.code.len();
        let mut in_test = vec![false; nl];
        let mut l = 0;
        while l < nl {
            let t = self.code[l].trim();
            let is_test_attr = t.starts_with("#[") && t.contains("cfg") && t.contains("test");
            if !is_test_attr {
                l += 1;
                continue;
            }
            // Find the `mod` (skipping further attrs / blanks); bail to
            // normal scanning if this attribute decorates something else.
            let mut m = l + 1;
            let mut found_mod = false;
            while m < nl {
                let tm = self.code[m].trim();
                if tm.is_empty() || tm.starts_with("#[") {
                    m += 1;
                    continue;
                }
                found_mod = tm.starts_with("mod ") || tm.starts_with("pub mod ");
                break;
            }
            if !found_mod {
                l += 1;
                continue;
            }
            // Brace-count from the mod line.
            let mut depth = 0i64;
            let mut opened = false;
            let mut e = m;
            while e < nl {
                for ch in self.code[e].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                in_test[e] = true;
                if opened && depth <= 0 {
                    break;
                }
                e += 1;
            }
            for flag in in_test.iter_mut().take(e.min(nl)).skip(l) {
                *flag = true;
            }
            l = e + 1;
        }
        in_test
    }
}

impl fmt::Debug for Lexed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lexed({} lines)", self.code.len())
    }
}

/// Is `c` part of an identifier?
pub fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && is_ident(b[i - 1])
}

/// First 0-based column where `line` contains `word` delimited by
/// non-identifier chars, if any.
pub fn find_word(line: &str, word: &str) -> Option<usize> {
    let chars: Vec<char> = line.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || chars.len() < w.len() {
        return None;
    }
    for s in 0..=chars.len() - w.len() {
        if chars[s..s + w.len()] == w[..]
            && (s == 0 || !is_ident(chars[s - 1]))
            && (s + w.len() == chars.len() || !is_ident(chars[s + w.len()]))
        {
            return Some(s);
        }
    }
    None
}

/// First 0-based column where `line` contains `needle` (a `a::b` path
/// fragment) not preceded by an identifier char (so `my_thread::spawn`
/// does not match `thread::spawn`, but `std::thread::spawn` does).
pub fn find_path(line: &str, needle: &str) -> Option<usize> {
    let chars: Vec<char> = line.chars().collect();
    let w: Vec<char> = needle.chars().collect();
    if w.is_empty() || chars.len() < w.len() {
        return None;
    }
    for s in 0..=chars.len() - w.len() {
        if chars[s..s + w.len()] == w[..] && (s == 0 || !is_ident(chars[s - 1])) {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_masks_line_and_block_comments() {
        let lx = Lexed::new("let a = 1; // unsafe here\n/* unsafe\nstill */ let b = 2;\n");
        assert!(find_word(&lx.code[0], "unsafe").is_none());
        assert!(lx.comments[0].contains("unsafe"));
        assert!(find_word(&lx.code[1], "unsafe").is_none());
        assert!(find_word(&lx.code[2], "let").is_some());
    }

    #[test]
    fn lexer_masks_string_contents() {
        let lx = Lexed::new(r##"let s = "unsafe thread::spawn"; let r = r#"Instant::now"#;"##);
        let joined = lx.code.join("\n");
        assert!(!joined.contains("unsafe"));
        assert!(!joined.contains("thread::spawn"));
        assert!(!joined.contains("Instant::now"));
        assert!(joined.contains("let s"));
    }

    #[test]
    fn lexer_preserves_columns_under_masking() {
        let lx = Lexed::new("let s = \"abc\"; let t = 1;\n");
        // `let t` must sit at the same column as in the source.
        assert_eq!(find_word(&lx.code[0], "t"), Some(19));
    }

    #[test]
    fn lexer_distinguishes_lifetimes_from_char_literals() {
        let lx = Lexed::new("fn f<'a>(x: &'a str) -> char { 'x' }\nlet c = '\\n';\n");
        assert!(
            lx.code[0].contains("'a"),
            "lifetime preserved: {}",
            lx.code[0]
        );
        assert!(!lx.code[0].contains("'x'"), "char literal masked");
        assert!(!lx.code[1].contains("\\n"));
    }

    #[test]
    fn lexer_handles_nested_block_comments() {
        let lx = Lexed::new("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(find_word(&lx.code[0], "let").is_some());
        assert!(find_word(&lx.code[0], "still").is_none());
    }

    #[test]
    fn word_and_path_boundaries() {
        assert!(find_word("unsafe {", "unsafe").is_some());
        assert!(find_word("unsafe_code", "unsafe").is_none());
        assert!(find_word("an_unsafe", "unsafe").is_none());
        assert!(find_path("std::thread::spawn(f)", "thread::spawn").is_some());
        assert!(find_path("my_thread::spawn(f)", "thread::spawn").is_none());
    }

    #[test]
    fn test_mod_spans_are_detected() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use super::*;
    fn helper() { std::thread::spawn(|| {}); }
}
fn after() {}
";
        let lx = Lexed::new(src);
        let t = lx.test_mod_lines();
        assert!(!t[0]);
        assert!(t[1] && t[2] && t[4]);
        assert!(!t[6]);
    }
}
