//! Seeded-violation workspace trees for rule tests.
//!
//! Every rule proves itself against a [`Tree`]: a throwaway on-disk
//! mini-workspace seeded with exactly the violation (or non-violation)
//! under test, linted through the same [`crate::lint_root`] entry
//! point the CLI uses.

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::diag::Violation;

/// Process-wide counter so concurrent tests get distinct roots.
/// (A `Mutex`, not an atomic: test scaffolding is not an audited sync
/// module, and the linter holds itself to its own atomics rule.)
static DIR_SEQ: Mutex<usize> = Mutex::new(0);

/// A temporary mini-workspace rooted under the system temp dir;
/// removed on drop.
pub struct Tree {
    /// Root directory of the seeded tree.
    pub root: PathBuf,
}

impl Tree {
    /// Create an empty tree.
    pub fn new() -> Self {
        let seq = {
            let mut guard = DIR_SEQ.lock().expect("seq lock");
            *guard += 1;
            *guard
        };
        let root = std::env::temp_dir().join(format!("xtask-lint-{}-{seq}", std::process::id()));
        fs::create_dir_all(&root).expect("create tree root");
        Tree { root }
    }

    /// Write `content` at `rel`, creating parent directories.
    pub fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("create parents");
        fs::write(path, content).expect("write file");
    }

    /// Lint the tree; returns the active (unsuppressed) findings in
    /// canonical order.
    pub fn lint(&self) -> Vec<Violation> {
        crate::lint_root(&self.root)
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// The rule names of `vs`, in order — the usual test assertion.
pub fn rules(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}
