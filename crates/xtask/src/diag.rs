//! Diagnostics: severities, rustc-style rendering, `xtask-allow`
//! suppression application, and the `--json` machine format.
//!
//! The JSON schema is versioned and field order is stable — CI uploads
//! the report as an artifact and a GitHub problem matcher parses the
//! human rendering, so both formats are pinned by golden tests.

use std::fmt;

use crate::model::Workspace;

/// Finding severity. `Error` findings fail the lint; `Warning`
/// findings are reported (and serialized) but do not affect the exit
/// code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory.
    Warning,
    /// Invariant violation.
    Error,
}

impl Severity {
    /// Lowercase label used in both renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A single lint finding.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`safety-comment`, `panic-reachability`, ...).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Path relative to the linted root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Human-readable description.
    pub msg: String,
    /// Extra note lines (call paths, hints).
    pub notes: Vec<String>,
    /// `Some(reason)` when an `xtask-allow` comment suppressed it.
    pub suppressed: Option<String>,
}

impl Violation {
    /// An error-severity finding with no notes.
    pub fn error(rule: &'static str, path: &str, line: usize, col: usize, msg: String) -> Self {
        Violation {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line,
            col,
            msg,
            notes: Vec::new(),
            suppressed: None,
        }
    }
}

impl fmt::Display for Violation {
    /// Rustc-style rendering; the first two lines are what the CI
    /// problem matcher parses:
    ///
    /// ```text
    /// error[rule-name]: message
    ///   --> path:line:col
    ///   = note: extra context
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}:{}:{}",
            self.severity.label(),
            self.rule,
            self.msg,
            self.path,
            self.line,
            self.col
        )?;
        for n in &self.notes {
            write!(f, "\n  = note: {n}")?;
        }
        Ok(())
    }
}

/// The full lint outcome: every finding, suppressed ones included.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, col, rule).
    pub violations: Vec<Violation>,
}

impl Report {
    /// Active (unsuppressed) findings.
    pub fn active(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.suppressed.is_none())
    }

    /// Does any active error-severity finding exist?
    pub fn has_errors(&self) -> bool {
        self.active().any(|v| v.severity == Severity::Error)
    }

    /// Canonical ordering; call once after all rules ran.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    }

    /// Apply `xtask-allow` suppressions from the workspace models:
    /// a finding is suppressed when a suppression in the same file
    /// names its rule and guards its line. Unused and malformed
    /// suppressions become findings themselves.
    pub fn apply_suppressions(&mut self, ws: &Workspace) {
        for file in &ws.files {
            for (line, why) in &file.bad_suppressions {
                self.violations.push(Violation::error(
                    "suppression-syntax",
                    &file.rel,
                    line + 1,
                    1,
                    format!("malformed `xtask-allow` comment: {why}"),
                ));
            }
            for sup in &file.suppressions {
                let mut used = false;
                for v in self.violations.iter_mut() {
                    if v.suppressed.is_none()
                        && v.rule == sup.rule
                        && v.path == file.rel
                        && v.line == sup.target + 1
                    {
                        v.suppressed = Some(sup.reason.clone());
                        used = true;
                    }
                }
                if !used {
                    self.violations.push(Violation {
                        rule: "unused-suppression",
                        severity: Severity::Error,
                        path: file.rel.clone(),
                        line: sup.line + 1,
                        col: 1,
                        msg: format!(
                            "suppression of `{}` matches no finding on its target line — remove it",
                            sup.rule
                        ),
                        notes: vec![
                            "suppressions must sit on the offending line or directly above it"
                                .to_string(),
                        ],
                        suppressed: None,
                    });
                }
            }
        }
    }

    /// Machine-readable rendering. Field order is stable and pinned by
    /// a golden test; consumers may rely on it.
    pub fn to_json(&self) -> String {
        let mut errors = 0usize;
        let mut warnings = 0usize;
        let mut suppressed = 0usize;
        for v in &self.violations {
            if v.suppressed.is_some() {
                suppressed += 1;
            } else if v.severity == Severity::Error {
                errors += 1;
            } else {
                warnings += 1;
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str("  \"tool\": \"xtask-lint\",\n");
        s.push_str(&format!(
            "  \"counts\": {{ \"error\": {errors}, \"warning\": {warnings}, \"suppressed\": {suppressed} }},\n"
        ));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    { ");
            s.push_str(&format!("\"rule\": \"{}\", ", json_escape(v.rule)));
            s.push_str(&format!("\"severity\": \"{}\", ", v.severity.label()));
            s.push_str(&format!("\"path\": \"{}\", ", json_escape(&v.path)));
            s.push_str(&format!("\"line\": {}, ", v.line));
            s.push_str(&format!("\"col\": {}, ", v.col));
            s.push_str(&format!("\"msg\": \"{}\", ", json_escape(&v.msg)));
            s.push_str("\"notes\": [");
            for (j, n) in v.notes.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\"", json_escape(n)));
            }
            s.push_str("], ");
            match &v.suppressed {
                Some(r) => s.push_str(&format!(
                    "\"suppressed\": true, \"reason\": \"{}\"",
                    json_escape(r)
                )),
                None => s.push_str("\"suppressed\": false, \"reason\": null"),
            }
            s.push_str(" }");
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (the only non-trivial piece of the
/// dependency-free serializer).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "panic-reachability",
            severity: Severity::Error,
            path: "crates/demo/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            msg: "slice index `v[..]` reachable from pub `try_f`".to_string(),
            notes: vec!["call path: try_f -> mid -> bot".to_string()],
            suppressed: None,
        });
        r.violations.push(Violation {
            rule: "no-raw-clock",
            severity: Severity::Warning,
            path: "crates/demo/src/time.rs".to_string(),
            line: 7,
            col: 13,
            msg: "`Instant::now` outside the deadline module".to_string(),
            notes: vec![],
            suppressed: Some("bench-only code path".to_string()),
        });
        r
    }

    // Golden: the human rendering is what the CI problem matcher
    // parses — changing it means changing the matcher too.
    #[test]
    fn human_format_golden() {
        let r = sample();
        let rendered = format!("{}", r.violations[0]);
        assert_eq!(
            rendered,
            "error[panic-reachability]: slice index `v[..]` reachable from pub `try_f`\n  --> crates/demo/src/lib.rs:3:9\n  = note: call path: try_f -> mid -> bot"
        );
    }

    // Golden: stable field order of the --json schema.
    #[test]
    fn json_format_golden() {
        let r = sample();
        let expected = "{\n  \"version\": 1,\n  \"tool\": \"xtask-lint\",\n  \"counts\": { \"error\": 1, \"warning\": 0, \"suppressed\": 1 },\n  \"violations\": [\n    { \"rule\": \"panic-reachability\", \"severity\": \"error\", \"path\": \"crates/demo/src/lib.rs\", \"line\": 3, \"col\": 9, \"msg\": \"slice index `v[..]` reachable from pub `try_f`\", \"notes\": [\"call path: try_f -> mid -> bot\"], \"suppressed\": false, \"reason\": null },\n    { \"rule\": \"no-raw-clock\", \"severity\": \"warning\", \"path\": \"crates/demo/src/time.rs\", \"line\": 7, \"col\": 13, \"msg\": \"`Instant::now` outside the deadline module\", \"notes\": [], \"suppressed\": true, \"reason\": \"bench-only code path\" }\n  ]\n}\n";
        assert_eq!(r.to_json(), expected);
    }

    #[test]
    fn empty_report_json_is_well_formed() {
        let r = Report::default();
        assert_eq!(
            r.to_json(),
            "{\n  \"version\": 1,\n  \"tool\": \"xtask-lint\",\n  \"counts\": { \"error\": 0, \"warning\": 0, \"suppressed\": 0 },\n  \"violations\": []\n}\n"
        );
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exit_status_tracks_active_errors_only() {
        let mut r = sample();
        assert!(r.has_errors());
        r.violations[0].suppressed = Some("pinned".to_string());
        assert!(!r.has_errors());
    }
}
