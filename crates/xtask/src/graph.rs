//! Approximate intra-workspace call graph.
//!
//! Resolution is *name-based* (see DESIGN.md §16 for the soundness
//! discussion): a call edge is drawn from the calling function to
//! every workspace function the callee name can plausibly denote.
//!
//! - `.method(..)` resolves to same-file impl methods of that name,
//!   else same-crate ones — never workspace-wide (std receivers like
//!   `s.spawn(..)` or `buf.write(..)` would alias onto any workspace
//!   impl sharing the name);
//! - `Type::name(..)` resolves to methods of impls whose self type is
//!   `Type` (so `Vec::new` draws no edge into workspace `new`s);
//! - `module::name(..)` prefers free functions defined in a same-crate
//!   file whose stem is `module`, then any file with that stem, then
//!   the unique-name fallback;
//! - plain `name(..)` resolves to free functions only (associated fns
//!   need a receiver or type path): same-file, then same-crate, then a
//!   workspace-wide match only when the name is unique.
//!
//! This over-approximates (same-name functions alias) and
//! under-approximates (closures, fn pointers, trait objects and macro
//! bodies draw no edges) — both directions are deliberate and
//! documented; the panic-reachability rule treats the result as a
//! screening tool backed by inline suppressions, not a proof.

use std::collections::HashMap;

use crate::model::{Vis, Workspace};

/// Global function id: (file index, fn index within file).
pub type FnId = (usize, usize);

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Adjacency: edges[file][fn] = resolved callee ids (deduped).
    edges: HashMap<FnId, Vec<FnId>>,
}

impl CallGraph {
    /// Build the graph over every non-test function in the workspace.
    pub fn build(ws: &Workspace) -> Self {
        // Indexes. Method index maps (self_ty, name) and name-only.
        let mut by_file_name: HashMap<(usize, &str), Vec<FnId>> = HashMap::new();
        let mut by_crate_name: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut by_stem_name: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut by_crate_stem_name: HashMap<(&str, &str, &str), Vec<FnId>> = HashMap::new();
        let mut methods_by_ty: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut methods_by_file: HashMap<(usize, &str), Vec<FnId>> = HashMap::new();
        let mut methods_by_crate: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();

        for (fi, file) in ws.files.iter().enumerate() {
            // Shim sources (`shims/`) are cfg-gated substitutes for
            // external crates; indexing them would alias every `load`,
            // `wait`, `swap`, ... in the production build onto the
            // shim's internals.
            if file.rel.starts_with("shims/") {
                continue;
            }
            for (ki, f) in file.fns.iter().enumerate() {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                let id = (fi, ki);
                let name = f.name.as_str();
                if let Some(ty) = &f.self_ty {
                    // Associated fns are reachable only through a
                    // receiver (`.m(..)`), a type path (`Ty::m(..)`)
                    // or `Self::m(..)` — never as a plain `m(..)`.
                    methods_by_ty
                        .entry((ty.as_str(), name))
                        .or_default()
                        .push(id);
                    methods_by_file.entry((fi, name)).or_default().push(id);
                    methods_by_crate
                        .entry((file.crate_name(), name))
                        .or_default()
                        .push(id);
                } else {
                    by_file_name.entry((fi, name)).or_default().push(id);
                    by_crate_name
                        .entry((file.crate_name(), name))
                        .or_default()
                        .push(id);
                    by_name.entry(name).or_default().push(id);
                    by_stem_name
                        .entry((file.stem(), name))
                        .or_default()
                        .push(id);
                    by_crate_stem_name
                        .entry((file.crate_name(), file.stem(), name))
                        .or_default()
                        .push(id);
                }
            }
        }

        // Cross-crate calls fall back to a workspace-wide name match
        // ONLY when the name is unique — common names (`load`, `get`,
        // `wait`, ...) would otherwise alias the whole tree together.
        let mut edges: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for call in &file.calls {
                let from = (fi, call.fn_idx);
                let name = call.name.as_str();
                let targets: Option<&Vec<FnId>> = if call.method {
                    // No workspace-wide fallback for methods: std
                    // receivers (`s.spawn`, `buf.write`, ...) would
                    // alias onto any workspace impl sharing the name.
                    methods_by_file
                        .get(&(fi, name))
                        .or_else(|| methods_by_crate.get(&(file.crate_name(), name)))
                } else if let Some(q) = &call.qual {
                    let q = q.as_str();
                    if q.chars().next().is_some_and(char::is_uppercase) {
                        // `Type::name` — only impls of that exact type;
                        // `Self::name` — same-file impl methods.
                        if q == "Self" {
                            methods_by_file.get(&(fi, name))
                        } else {
                            methods_by_ty.get(&(q, name))
                        }
                    } else {
                        // `module::name` — file-stem match, same crate
                        // first (`pool.rs` exists in two crates).
                        by_crate_stem_name
                            .get(&(file.crate_name(), q, name))
                            .or_else(|| by_stem_name.get(&(q, name)))
                            .or_else(|| by_name.get(name).filter(|v| v.len() == 1))
                    }
                } else {
                    by_file_name
                        .get(&(fi, name))
                        .or_else(|| by_crate_name.get(&(file.crate_name(), name)))
                        .or_else(|| by_name.get(name).filter(|v| v.len() == 1))
                };
                if let Some(ts) = targets {
                    let e = edges.entry(from).or_default();
                    for t in ts {
                        if !e.contains(t) {
                            e.push(*t);
                        }
                    }
                }
            }
        }
        CallGraph { edges }
    }

    /// Callees of `id` (empty if none resolved).
    pub fn callees(&self, id: FnId) -> &[FnId] {
        self.edges.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Breadth-first reachability from `entry`, stopping at (and not
    /// entering) containment-boundary functions. Returns every reached
    /// id with its predecessor, entry included (predecessor = itself).
    pub fn reach_from(&self, ws: &Workspace, entry: FnId) -> HashMap<FnId, FnId> {
        let barrier =
            |id: FnId| ws.files[id.0].fns[id.1].has_catch_unwind;
        let mut parent: HashMap<FnId, FnId> = HashMap::new();
        if barrier(entry) {
            return parent;
        }
        parent.insert(entry, entry);
        let mut queue = vec![entry];
        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            for &next in self.callees(cur) {
                if parent.contains_key(&next) || barrier(next) {
                    continue;
                }
                parent.insert(next, cur);
                queue.push(next);
            }
        }
        parent
    }

    /// The call path `entry → ... → target` as function names, using
    /// the predecessor map from [`Self::reach_from`].
    pub fn path_names(
        ws: &Workspace,
        parent: &HashMap<FnId, FnId>,
        target: FnId,
    ) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter()
            .map(|(fi, ki)| ws.files[fi].fns[ki].name.clone())
            .collect()
    }
}

/// Entry points for panic-reachability: plain `pub fn try_*` in
/// library sources (not shims, not bins, not tests).
pub fn try_entries(ws: &Workspace) -> Vec<FnId> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        let rel = &file.rel;
        let in_lib = (rel.starts_with("crates/") || rel.starts_with("src/"))
            && rel.contains("src/")
            && !rel.contains("/bin/");
        if !in_lib {
            continue;
        }
        for (ki, f) in file.fns.iter().enumerate() {
            if f.vis == Vis::Pub && f.name.starts_with("try_") && !f.is_test && f.body.is_some() {
                out.push((fi, ki));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("/x"),
            files: files
                .iter()
                .map(|(rel, src)| FileModel::new(rel.to_string(), src))
                .collect(),
        }
    }

    fn fn_id(ws: &Workspace, name: &str) -> FnId {
        for (fi, f) in ws.files.iter().enumerate() {
            for (ki, it) in f.fns.iter().enumerate() {
                if it.name == name {
                    return (fi, ki);
                }
            }
        }
        panic!("no fn {name}");
    }

    #[test]
    fn same_crate_resolution_and_reachability() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn try_top(v: &[u64]) -> u64 { mid(v) }\nfn mid(v: &[u64]) -> u64 { bot(v) }\nfn bot(v: &[u64]) -> u64 { v[0] }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn unrelated() { boom().unwrap(); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        let entry = fn_id(&w, "try_top");
        let reach = g.reach_from(&w, entry);
        assert!(reach.contains_key(&fn_id(&w, "bot")));
        assert!(!reach.contains_key(&fn_id(&w, "unrelated")));
        let path = CallGraph::path_names(&w, &reach, fn_id(&w, "bot"));
        assert_eq!(path, vec!["try_top", "mid", "bot"]);
    }

    #[test]
    fn std_type_methods_draw_no_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn try_f() -> Vec<u64> { Vec::new() }\nstruct Pool;\nimpl Pool { fn new() -> Pool { explode(); Pool } }\nfn explode() { panic!(\"x\") }\n",
        )]);
        let g = CallGraph::build(&w);
        let reach = g.reach_from(&w, fn_id(&w, "try_f"));
        assert!(
            !reach.contains_key(&fn_id(&w, "explode")),
            "Vec::new must not alias Pool::new"
        );
    }

    #[test]
    fn typed_qualifier_resolves_to_matching_impl() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct Pool;\nimpl Pool { fn spawn() { risky() } }\npub fn try_go() { Pool::spawn() }\nfn risky() { panic!(\"y\") }\n",
        )]);
        let g = CallGraph::build(&w);
        let reach = g.reach_from(&w, fn_id(&w, "try_go"));
        assert!(reach.contains_key(&fn_id(&w, "risky")));
    }

    #[test]
    fn catch_unwind_is_a_barrier() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn try_f() { contained() }\nfn contained() { let _ = std::panic::catch_unwind(|| deep()); }\nfn deep() { panic!(\"z\") }\n",
        )]);
        let g = CallGraph::build(&w);
        let reach = g.reach_from(&w, fn_id(&w, "try_f"));
        assert!(!reach.contains_key(&fn_id(&w, "contained")));
        assert!(!reach.contains_key(&fn_id(&w, "deep")));
    }

    #[test]
    fn try_entries_are_plain_pub_only() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn try_a() {}\npub(crate) fn try_b() {}\nfn try_c() {}\npub fn plain() {}\n",
        )]);
        let names: Vec<String> = try_entries(&w)
            .into_iter()
            .map(|(fi, ki)| w.files[fi].fns[ki].name.clone())
            .collect();
        assert_eq!(names, vec!["try_a"]);
    }
}
