//! R9 `channel-isolation`, R10 `error-taxonomy`.
//!
//! Boundary rules: R9 keeps the executor↔shard seam message-shaped so
//! the shard pool can become a process (ROADMAP item 3) without the
//! executor noticing, and R10 keeps the workspace's pub `Result` APIs
//! on the crate error enums so callers can match on failure modes.

use crate::diag::{Report, Violation};
use crate::model::{Vis, Workspace};
use crate::parse::{Tok, TokKind};
use crate::rules::in_library_src;

/// Channel-boundary contracts: (file, module, allowed item names).
/// The listed file may name items of the module ONLY from the allowed
/// set — the message/channel vocabulary of the seam.
const CHANNEL_BOUNDARIES: &[(&str, &str, &[&str])] = &[(
    "crates/scan-shard/src/executor.rs",
    "pool",
    &["Job", "Reply", "Output", "Phase", "Shard", "ShardPool"],
)];

/// Run the boundary rules.
pub fn check(ws: &Workspace, out: &mut Report) {
    for file in &ws.files {
        let rel = file.rel.as_str();
        if let Some(&(_, module, allowed)) =
            CHANNEL_BOUNDARIES.iter().find(|(f, _, _)| *f == rel)
        {
            check_boundary(file, module, allowed, out);
        }
        if in_library_src(rel) {
            check_error_taxonomy(file, out);
        }
    }
}

/// R9: every `module::item` reference (inline path or `use` brace
/// group) must name an allowed item.
fn check_boundary(
    file: &crate::model::FileModel,
    module: &str,
    allowed: &[&str],
    out: &mut Report,
) {
    let toks = &file.parsed.toks;
    let mat = &file.parsed.mat;
    let mut flag = |t: &Tok| {
        if allowed.contains(&t.text.as_str()) || t.text == "self" {
            return;
        }
        let mut v = Violation::error(
            "channel-isolation",
            &file.rel,
            t.line + 1,
            t.col + 1,
            format!(
                "`{}::{}` crosses the executor↔shard boundary outside the channel vocabulary",
                module, t.text
            ),
        );
        v.notes.push(format!(
            "the executor may reference `{}` only through: {}",
            module,
            allowed.join(", ")
        ));
        out.violations.push(v);
    };
    for (i, t) in toks.iter().enumerate() {
        if !t.is(module) || !toks.get(i + 1).is_some_and(|n| n.is_punct("::")) {
            continue;
        }
        // Don't treat `other::pool::X`'s `pool` match loosely: any
        // path spelling `pool::X` in this file is the same seam.
        match toks.get(i + 2) {
            Some(n) if n.kind == TokKind::Ident => flag(n),
            Some(n) if n.is_punct("{") => {
                let close = mat[i + 2].unwrap_or(toks.len() - 1);
                for k in i + 3..close {
                    // Leaf names only: idents not followed by `::`.
                    if toks[k].kind == TokKind::Ident
                        && !toks.get(k + 1).is_some_and(|a| a.is_punct("::"))
                    {
                        flag(&toks[k]);
                    }
                }
            }
            _ => {}
        }
    }
}

/// R10: plain-`pub` functions returning `Result<_, E>` must not use
/// `String` or `Box<dyn ...>` as `E` — those erase the failure mode.
fn check_error_taxonomy(file: &crate::model::FileModel, out: &mut Report) {
    let toks = &file.parsed.toks;
    for f in &file.fns {
        if f.vis != Vis::Pub || f.is_test {
            continue;
        }
        // Signature = tokens from `fn` to the body `{` (or the
        // declaration `;`).
        let end = match f.body {
            Some((b, _)) => b,
            None => (f.fn_tok..toks.len())
                .find(|&k| toks[k].is_punct(";"))
                .unwrap_or(toks.len()),
        };
        let sig = &toks[f.fn_tok..end];
        let Some(arrow) = sig.iter().position(|t| t.is_punct("->")) else {
            continue;
        };
        let ret = &sig[arrow + 1..];
        let Some(err) = result_error_tokens(ret) else {
            continue;
        };
        if let Some(bad) = classify_error_type(err) {
            let mut v = Violation::error(
                "error-taxonomy",
                &file.rel,
                f.line + 1,
                f.col + 1,
                format!("pub fn `{}` returns `Result<_, {bad}>`", f.name),
            );
            v.notes.push(
                "stringly/erased errors hide the failure mode; use the crate's typed error enum"
                    .to_string(),
            );
            out.violations.push(v);
        }
    }
}

/// The token slice of `E` in the first `Result<T, E>` of a return
/// type, or `None` when the return type is not a two-parameter
/// `Result` (aliases like `ScanResult<T>` are typed by construction).
fn result_error_tokens(ret: &[Tok]) -> Option<&[Tok]> {
    let r = ret
        .iter()
        .position(|t| t.is("Result"))
        .filter(|&r| ret.get(r + 1).is_some_and(|n| n.is_punct("<")))?;
    let mut depth = 0i64;
    let mut comma = None;
    for (k, t) in ret.iter().enumerate().skip(r + 1) {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                let c = comma?;
                let mut end = k;
                // Tolerate a trailing comma in multi-line signatures.
                while end > c + 1 && ret[end - 1].is_punct(",") {
                    end -= 1;
                }
                return Some(&ret[c + 1..end]);
            }
        } else if t.is_punct(",") && depth == 1 && comma.is_none() {
            comma = Some(k);
        }
    }
    None
}

/// `Some(label)` when the error-type tokens spell an erased error.
fn classify_error_type(err: &[Tok]) -> Option<&'static str> {
    // Strip leading path qualifiers (`std :: string ::`).
    let mut i = 0;
    while i + 1 < err.len() && err[i].kind == TokKind::Ident && err[i + 1].is_punct("::") {
        i += 2;
    }
    let rest = &err[i..];
    match rest.first() {
        Some(t) if t.is("String") && rest.len() == 1 => Some("String"),
        Some(t) if t.is("Box") && rest.iter().any(|t| t.is("dyn")) => Some("Box<dyn ..>"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{rules, Tree};

    #[test]
    fn executor_using_channel_vocabulary_is_clean() {
        let t = Tree::new();
        t.write(
            "crates/scan-shard/src/executor.rs",
            "use crate::pool::{Job, Output, Phase, Reply, Shard};\npub fn f(s: &Shard) -> Phase { pool::Phase::Up }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn executor_reaching_into_shard_internals_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/scan-shard/src/executor.rs",
            "use crate::pool::{load_pair, Job};\npub fn f(d: &[u64]) -> u64 { crate::pool::pair_combine(1, 2) }\n",
        );
        let vs = t.lint();
        assert_eq!(
            rules(&vs),
            vec!["channel-isolation", "channel-isolation"],
            "both the use-import and the inline path: {vs:?}"
        );
        assert!(vs[0].msg.contains("pool::load_pair"));
        assert!(vs[1].msg.contains("pool::pair_combine"));
    }

    #[test]
    fn other_files_may_use_pool_internals() {
        let t = Tree::new();
        t.write(
            "crates/scan-shard/src/combine.rs",
            "use crate::pool::load_pair;\npub fn f(d: &[u64]) -> u64 { load_pair(d, 0) }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    // -- R10 -----------------------------------------------------------------

    #[test]
    fn pub_result_string_error_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn parse(s: &str) -> Result<u64, String> { Err(s.to_string()) }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["error-taxonomy"]);
        assert!(vs[0].msg.contains("Result<_, String>"));
    }

    #[test]
    fn pub_result_boxed_dyn_error_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn run() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["error-taxonomy"]);
    }

    #[test]
    fn typed_errors_and_aliases_are_clean() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub enum ScanError { Bad }\npub type ScanResult<T> = Result<T, ScanError>;\npub fn a() -> Result<u64, ScanError> { Ok(1) }\npub fn b() -> ScanResult<u64> { Ok(1) }\npub fn c() -> Result<String, ScanError> { Ok(String::new()) }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn non_pub_and_test_fns_are_out_of_scope() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn inner() -> Result<u64, String> { Ok(1) }\npub(crate) fn mid() -> Result<u64, String> { Ok(1) }\n#[cfg(test)]\nmod tests {\n    pub fn t() -> Result<(), String> { Ok(()) }\n}\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn multi_line_signature_is_parsed() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn long(\n    a: u64,\n    b: u64,\n) -> Result<\n    Vec<u64>,\n    String,\n> {\n    Err(format!(\"{a}{b}\"))\n}\n",
        );
        assert_eq!(rules(&t.lint()), vec!["error-taxonomy"]);
    }
}
