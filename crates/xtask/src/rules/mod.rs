//! The rule catalog (DESIGN.md §16).
//!
//! | rule | id | checks |
//! |------|----|--------|
//! | R1 | `safety-comment` | every `unsafe` has an adjacent `// SAFETY:` |
//! | R2 | `unsafe-allowlist` | `unsafe` only in audited kernel modules |
//! | R3 | `no-raw-spawn` | threads only from the worker/shard pools |
//! | R4 | `no-raw-clock` | wall time only through the deadline module |
//! | R5 | `crate-lints` | crate roots pin deny/forbid lint attributes |
//! | R6 | `simd-confinement` | ISA detection only in `simd.rs` |
//! | R7 | `panic-reachability` | `pub fn try_*` cannot reach a panic |
//! | R8 | `atomics-confinement` | atomics only in audited sync modules |
//! | R9 | `channel-isolation` | executor↔shard boundary stays channel-only |
//! | R10 | `error-taxonomy` | pub `Result` APIs use typed errors |
//!
//! Plus the suppression hygiene rules `suppression-syntax` and
//! `unused-suppression` emitted by the diagnostics layer.

pub mod boundaries;
pub mod confinement;
pub mod panic_reach;
pub mod safety;

use crate::diag::Report;
use crate::model::Workspace;

/// Files allowed to contain `unsafe` (the audited kernel modules).
pub const UNSAFE_ALLOWLIST: [&str; 6] = [
    "crates/scan-core/src/parallel.rs",
    "crates/scan-core/src/pool.rs",
    "crates/scan-core/src/multi_split.rs",
    "crates/scan-core/src/ops.rs",
    "crates/scan-core/src/simd.rs",
    "crates/scan-core/src/lookback.rs",
];

/// The files allowed to spawn threads directly: the worker pool and
/// the shard supervisors (which each own a worker pool).
pub const SPAWN_ALLOWLIST: [&str; 2] = [
    "crates/scan-core/src/pool.rs",
    "crates/scan-shard/src/pool.rs",
];

/// The one file allowed to read the wall clock.
pub const CLOCK_ALLOWLIST: &str = "crates/scan-core/src/deadline.rs";

/// The one file allowed to detect or gate on CPU features.
pub const SIMD_ALLOWLIST: &str = "crates/scan-core/src/simd.rs";

/// The audited sync modules allowed to hold atomic types and memory
/// orderings: the swap points, the pools, the clock, the lookback
/// descriptor table, and the service's slot-flag cell.
pub const ATOMICS_ALLOWLIST: [&str; 6] = [
    "crates/scan-core/src/sync.rs",
    "crates/scan-core/src/pool.rs",
    "crates/scan-core/src/deadline.rs",
    "crates/scan-core/src/lookback.rs",
    "crates/scan-shard/src/pool.rs",
    "crates/scan-service/src/sync.rs",
];

/// The crate root that holds `unsafe` and therefore carries
/// `deny(unsafe_op_in_unsafe_fn)` instead of `forbid(unsafe_code)`.
pub const UNSAFE_CRATE_ROOT: &str = "crates/scan-core/src/lib.rs";

/// Is this path inside a `src/` tree of a workspace crate (the scope
/// of the confinement rules), excluding `src/bin/` utilities?
pub fn in_library_src(rel: &str) -> bool {
    (rel.starts_with("crates/") || rel.starts_with("src/"))
        && rel.contains("/src/")
        && !rel.contains("/bin/")
        || rel.starts_with("src/") && !rel.contains("/bin/")
}

/// Run every rule over the workspace and return the (unsorted,
/// unsuppressed) findings.
pub fn run_all(ws: &Workspace) -> Report {
    let mut report = Report::default();
    safety::check(ws, &mut report);
    confinement::check(ws, &mut report);
    panic_reach::check(ws, &mut report);
    boundaries::check(ws, &mut report);
    report
}
