//! R7 `panic-reachability`: no panic-capable expression may be
//! reachable from any `pub fn try_*` entry point.
//!
//! The `try_*` prefix is this workspace's contract for "returns
//! `Err`/`None` instead of panicking" — the degraded-mode paths in the
//! service layer and the shard-loss recovery paths both lean on it.
//! This rule walks the approximate call graph ([`crate::graph`]) from
//! every such entry and flags every `.unwrap()` / `.expect()` /
//! panic-family macro / slice-index expression it can reach, with the
//! call path in the finding's notes. Functions that `catch_unwind`
//! are containment barriers: their own sites and everything below
//! them are exempt.
//!
//! Severity is split by site kind: unconditional panics (unwrap,
//! expect, panic-family macros) are errors; slice-index sites are
//! warnings — indexing pervades the serial kernels and is in-bounds by
//! construction once the entry validates, so those are reported for
//! audit (and serialized in `--json`) without failing the lint.

use std::collections::HashSet;

use crate::diag::{Report, Violation};
use crate::graph::{try_entries, CallGraph};
use crate::model::Workspace;

/// Run the panic-reachability rule.
pub fn check(ws: &Workspace, out: &mut Report) {
    let graph = CallGraph::build(ws);
    // Each panic site is reported once, for the first entry that
    // reaches it (entries iterate in path order, so this is stable).
    let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
    for entry in try_entries(ws) {
        let reach = graph.reach_from(ws, entry);
        let entry_name = &ws.files[entry.0].fns[entry.1].name;
        for (fi, file) in ws.files.iter().enumerate() {
            for site in &file.panic_sites {
                if !reach.contains_key(&(fi, site.fn_idx)) {
                    continue;
                }
                if !seen.insert((fi, site.line, site.col)) {
                    continue;
                }
                let desc = match site.kind {
                    crate::model::PanicKind::Index => format!("slice index `{}`", site.what),
                    _ => format!("`{}`", site.what),
                };
                let mut v = Violation::error(
                    "panic-reachability",
                    &file.rel,
                    site.line + 1,
                    site.col + 1,
                    format!("{desc} reachable from pub `{entry_name}`"),
                );
                // Indexing pervades the serial kernels and is in-bounds
                // by construction once the entry validates its input —
                // report it, but only unconditional panics (unwrap /
                // expect / panic-family macros) fail the lint.
                if site.kind == crate::model::PanicKind::Index {
                    v.severity = crate::diag::Severity::Warning;
                }
                let path = CallGraph::path_names(ws, &reach, (fi, site.fn_idx));
                v.notes.push(format!("call path: {}", path.join(" -> ")));
                v.notes.push(
                    "pub `try_*` functions promise Err/None over panic; return an error, \
                     bounds-check, or contain with catch_unwind"
                        .to_string(),
                );
                out.violations.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{rules, Tree};

    #[test]
    fn unwrap_in_try_entry_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn try_get(v: &[u64]) -> u64 { v.first().copied().unwrap() }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["panic-reachability"]);
        assert!(vs[0].msg.contains("`.unwrap()`"));
        assert!(vs[0].msg.contains("try_get"));
        assert_eq!(vs[0].severity, crate::diag::Severity::Error);
    }

    #[test]
    fn panic_reachable_through_call_chain_reports_path() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn try_top(v: &[u64]) -> u64 { mid(v) }\nfn mid(v: &[u64]) -> u64 { bot(v) }\nfn bot(v: &[u64]) -> u64 { v[0] }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["panic-reachability"]);
        assert_eq!(vs[0].line, 4, "anchored at the panic site, not the entry");
        assert!(vs[0].msg.contains("slice index `v[..]`"));
        assert_eq!(vs[0].severity, crate::diag::Severity::Warning);
        assert!(
            vs[0].notes[0].contains("try_top -> mid -> bot"),
            "notes: {:?}",
            vs[0].notes
        );
    }

    #[test]
    fn cross_crate_reachability_is_tracked() {
        let t = Tree::new();
        t.write(
            "crates/api/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn try_run() { deep_helper() }\n",
        );
        t.write(
            "crates/impls/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn deep_helper() { panic!(\"boom\") }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["panic-reachability"]);
        assert_eq!(vs[0].path, "crates/impls/src/lib.rs");
    }

    #[test]
    fn non_try_pub_fn_may_panic() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn scan(v: &[u64]) -> u64 { v[0] }\npub(crate) fn try_inner(v: &[u64]) -> u64 { v[0] }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn catch_unwind_contains_the_panic() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn try_f() -> bool { contained() }\nfn contained() -> bool { std::panic::catch_unwind(|| deep()).is_ok() }\nfn deep() { panic!(\"z\") }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn each_site_reported_once_across_entries() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn try_a() { shared() }\npub fn try_b() { shared() }\nfn shared() { unreachable!() }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["panic-reachability"]);
    }

    #[test]
    fn suppression_with_reason_quiets_the_site() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn try_get(v: &[u64]) -> u64 {\n    // xtask-allow: panic-reachability index is bounds-checked by the caller contract\n    v[0]\n}\n",
        );
        assert_eq!(t.lint(), vec![]);
    }
}
