//! R1 `safety-comment`, R2 `unsafe-allowlist`, R5 `crate-lints`.

use crate::diag::{Report, Violation};
use crate::lexer::Lexed;
use crate::manifest::LintInheritance;
use crate::model::Workspace;
use crate::rules::{UNSAFE_ALLOWLIST, UNSAFE_CRATE_ROOT};

/// Run the unsafe-hygiene rules.
pub fn check(ws: &Workspace, out: &mut Report) {
    let inherit = LintInheritance::load(&ws.root);
    for file in &ws.files {
        let rel = file.rel.as_str();
        let unsafe_spans = file.lexed.word_spans("unsafe");

        // R2: unsafe allowlist — one finding per file, at the first
        // occurrence.
        if !UNSAFE_ALLOWLIST.contains(&rel) {
            if let Some(&(l, c)) = unsafe_spans.first() {
                out.violations.push(Violation::error(
                    "unsafe-allowlist",
                    rel,
                    l + 1,
                    c + 1,
                    format!(
                        "`unsafe` outside the audited kernel modules ({})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                ));
            }
        }

        // R1: every unsafe token is preceded by a SAFETY comment.
        for &(l, c) in &unsafe_spans {
            if !has_safety_comment(&file.lexed, l) {
                out.violations.push(Violation::error(
                    "safety-comment",
                    rel,
                    l + 1,
                    c + 1,
                    "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                ));
            }
        }

        // R5: crate roots carry the right lint pins.
        check_crate_root(file, &inherit, out);
    }
}

/// R1 adjacency, pinned exactly (seeded tests hold this shape):
///
/// - a comment containing `SAFETY:` on the `unsafe` line itself
///   satisfies the rule;
/// - otherwise, walk upward through the contiguous run of *attribute
///   lines* (`#[...]` / `#![...]`, with or without trailing comments)
///   and *comment-only lines*; any line in that run whose comment
///   mentions `SAFETY:` satisfies the rule;
/// - a blank line, or a code line without `SAFETY:`, terminates the
///   walk: a SAFETY comment separated from its `unsafe` by a blank
///   line is treated as stale and does NOT count.
fn has_safety_comment(lx: &Lexed, l: usize) -> bool {
    if lx.comments[l].contains("SAFETY:") {
        return true;
    }
    let mut i = l;
    while i > 0 {
        let above = i - 1;
        if lx.comments[above].contains("SAFETY:") {
            return true;
        }
        let code_t = lx.code[above].trim();
        let is_attr = code_t.starts_with("#[") || code_t.starts_with("#![");
        let is_comment_only = code_t.is_empty() && !lx.comments[above].is_empty();
        if is_attr || is_comment_only {
            i = above;
            continue;
        }
        // Blank line or unrelated code: the run is over.
        return false;
    }
    false
}

/// R5: crate roots pin the unsafe-code lint, either as a source
/// attribute or by inheriting the `[workspace.lints]` table.
fn check_crate_root(
    file: &crate::model::FileModel,
    inherit: &LintInheritance,
    out: &mut Report,
) {
    let rel = file.rel.as_str();
    let is_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/") || rel.starts_with("shims/"))
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs"));
    if !is_root {
        return;
    }
    let has = |attr: &str| file.lexed.code.iter().any(|l| l.trim().starts_with(attr));
    if rel == UNSAFE_CRATE_ROOT {
        if !has("#![deny(unsafe_op_in_unsafe_fn)]") {
            out.violations.push(Violation::error(
                "crate-lints",
                rel,
                1,
                1,
                "crate root with unsafe code must carry #![deny(unsafe_op_in_unsafe_fn)]"
                    .to_string(),
            ));
        }
    } else if !has("#![forbid(unsafe_code)]") && !inherit.root_inherits_forbid_unsafe(rel) {
        let mut v = Violation::error(
            "crate-lints",
            rel,
            1,
            1,
            "crate root must forbid unsafe code".to_string(),
        );
        v.notes.push(
            "either `#![forbid(unsafe_code)]` in the root, or `[lints] workspace = true` \
             in the crate manifest with `unsafe_code = \"forbid\"` in `[workspace.lints.rust]`"
                .to_string(),
        );
        out.violations.push(v);
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{rules, Tree};

    #[test]
    fn clean_file_passes() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "pub fn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["safety-comment"]);
        assert_eq!(vs[0].line, 1);
        assert_eq!(vs[0].col, 24);
    }

    #[test]
    fn safety_comment_above_satisfies_r1() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "// SAFETY: p is valid for writes.\n#[allow(dead_code)]\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn multi_line_safety_block_satisfies_r1() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/ops.rs",
            "// SAFETY: blocks are disjoint and cover 0..n, so each\n// write hits a unique index.\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    // R1 adjacency pin: an attribute *with a trailing comment* between
    // the SAFETY block and the unsafe line is allowed (this used to
    // fail while a bare attribute passed).
    #[test]
    fn attribute_with_trailing_comment_is_skipped() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "// SAFETY: p is valid for writes.\n#[inline] // hot path\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    // R1 adjacency pin: a blank line between the SAFETY comment and
    // the unsafe block makes the comment stale — always a violation.
    #[test]
    fn blank_line_detaches_safety_comment() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "// SAFETY: p is valid for writes.\n\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["safety-comment"]);
    }

    // R1 adjacency pin: blank line between attribute and SAFETY block
    // also detaches.
    #[test]
    fn blank_line_between_attr_and_comment_detaches() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/parallel.rs",
            "// SAFETY: p is valid for writes.\n\n#[inline]\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["safety-comment"]);
    }

    #[test]
    fn non_safety_comment_does_not_satisfy_r1() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/pool.rs",
            "// this is totally fine, trust me\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["safety-comment"]);
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// SAFETY: not actually fine — wrong module.\nfn f(p: *mut u8) { unsafe { p.write(0) } }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["unsafe-allowlist"]);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n// unsafe unsafe unsafe\npub const S: &str = \"unsafe { }\";\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let t = Tree::new();
        t.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(rules(&t.lint()), vec!["crate-lints"]);
    }

    #[test]
    fn scan_core_root_requires_deny_unsafe_op() {
        let t = Tree::new();
        t.write("crates/scan-core/src/lib.rs", "#![warn(missing_docs)]\n");
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["crate-lints"]);
        assert!(vs[0].msg.contains("unsafe_op_in_unsafe_fn"));
    }

    // R5 satellite: `[lints] workspace = true` inheritance from a
    // workspace table that forbids unsafe code satisfies the rule
    // without a source attribute.
    #[test]
    fn workspace_lints_inheritance_satisfies_r5() {
        let t = Tree::new();
        t.write(
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/demo\"]\n\n[workspace.lints.rust]\nunsafe_code = \"forbid\"\n",
        );
        t.write(
            "crates/demo/Cargo.toml",
            "[package]\nname = \"demo\"\n\n[lints]\nworkspace = true\n",
        );
        t.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(t.lint(), vec![]);
    }

    // ...but inheritance without the workspace-side forbid does not.
    #[test]
    fn inheritance_without_workspace_forbid_still_fails_r5() {
        let t = Tree::new();
        t.write(
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/demo\"]\n\n[workspace.lints.rust]\nmissing_docs = \"warn\"\n",
        );
        t.write(
            "crates/demo/Cargo.toml",
            "[package]\nname = \"demo\"\n\n[lints]\nworkspace = true\n",
        );
        t.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(rules(&t.lint()), vec!["crate-lints"]);
    }
}
