//! R3 `no-raw-spawn`, R4 `no-raw-clock`, R6 `simd-confinement`,
//! R8 `atomics-confinement`.
//!
//! The confinement family keeps capability-like APIs (threads, the
//! wall clock, ISA detection, atomics) inside single audited modules,
//! so the loom model, the deadline token, the SIMD dispatch table and
//! the Release/Acquire publication protocols each have exactly one
//! home — and ROADMAP item 3's multi-process transport can swap the
//! internals without a workspace-wide audit.

use crate::diag::{Report, Violation};
use crate::model::Workspace;
use crate::parse::TokKind;
use crate::rules::{
    in_library_src, ATOMICS_ALLOWLIST, CLOCK_ALLOWLIST, SIMD_ALLOWLIST, SPAWN_ALLOWLIST,
};

/// The atomic type names R8 confines.
const ATOMIC_TYPES: [&str; 13] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicCell",
];

/// The five memory-ordering literals (as `Ordering::X` paths, so
/// `std::cmp::Ordering::{Less,Equal,Greater}` never match).
const MEM_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Atomic read-modify-write method names whose calls must spell an
/// explicit `Ordering::` argument.
const ATOMIC_OPS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Run the confinement rules.
pub fn check(ws: &Workspace, out: &mut Report) {
    for file in &ws.files {
        let rel = file.rel.as_str();
        let lx = &file.lexed;

        // R6: ISA dispatch confinement. Strict scope — benches, bins
        // and test modules included: code that wants vectorization
        // goes through the dispatched tile table, never re-detects the
        // CPU.
        if rel != SIMD_ALLOWLIST {
            for pat in ["is_x86_feature_detected", "target_feature"] {
                for &(l, c) in &lx.word_spans(pat) {
                    out.violations.push(Violation::error(
                        "simd-confinement",
                        rel,
                        l + 1,
                        c + 1,
                        format!("`{pat}` outside {SIMD_ALLOWLIST}: consume the dispatched tile table"),
                    ));
                }
            }
        }

        // R3/R4/R8 scope: library sources only; test modules exempt.
        if !in_library_src(rel) {
            continue;
        }
        let in_test = &file.in_test;

        if !SPAWN_ALLOWLIST.contains(&rel) {
            for pat in ["thread::spawn", "thread::Builder"] {
                for &(l, c) in &lx.path_spans(pat) {
                    if !in_test[l] {
                        out.violations.push(Violation::error(
                            "no-raw-spawn",
                            rel,
                            l + 1,
                            c + 1,
                            format!(
                                "`{pat}` outside {}: use the worker pool",
                                SPAWN_ALLOWLIST.join(", ")
                            ),
                        ));
                    }
                }
            }
        }

        if rel != CLOCK_ALLOWLIST {
            for &(l, c) in &lx.path_spans("Instant::now") {
                if !in_test[l] {
                    out.violations.push(Violation::error(
                        "no-raw-clock",
                        rel,
                        l + 1,
                        c + 1,
                        format!(
                            "`Instant::now` outside {CLOCK_ALLOWLIST}: take time through ScanDeadline"
                        ),
                    ));
                }
            }
        }

        // R8: atomics confinement.
        if ATOMICS_ALLOWLIST.contains(&rel) {
            check_explicit_orderings(file, out);
        } else {
            check_no_atomics(file, out);
        }
    }
}

/// Outside the allowlist: no atomic type names, no memory-ordering
/// literals, no `sync::atomic` imports. One finding per line.
fn check_no_atomics(file: &crate::model::FileModel, out: &mut Report) {
    let lx = &file.lexed;
    for (l, line) in lx.code.iter().enumerate() {
        if file.in_test[l] {
            continue;
        }
        let hit = ATOMIC_TYPES
            .iter()
            .find_map(|t| crate::lexer::find_word(line, t).map(|c| (c, *t)))
            .or_else(|| {
                MEM_ORDERINGS
                    .iter()
                    .find_map(|p| crate::lexer::find_path(line, p).map(|c| (c, *p)))
            })
            .or_else(|| crate::lexer::find_path(line, "sync::atomic").map(|c| (c, "sync::atomic")));
        if let Some((c, what)) = hit {
            let mut v = Violation::error(
                "atomics-confinement",
                &file.rel,
                l + 1,
                c + 1,
                format!("`{what}` outside the audited sync modules"),
            );
            v.notes.push(format!(
                "atomics and memory orderings are confined to: {}",
                ATOMICS_ALLOWLIST.join(", ")
            ));
            out.violations.push(v);
        }
    }
}

/// Inside the allowlist: every atomic op call must spell an explicit
/// `Ordering::` argument (no `use Ordering::*` shorthand) so the
/// protocol is auditable at the call site.
fn check_explicit_orderings(file: &crate::model::FileModel, out: &mut Report) {
    let toks = &file.parsed.toks;
    let mat = &file.parsed.mat;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !ATOMIC_OPS.contains(&t.text.as_str()) {
            continue;
        }
        // Method-call syntax only: `.op(`.
        if i == 0 || !toks[i - 1].is_punct(".") {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.is_punct("(")).map(|_| i + 1) else {
            continue;
        };
        if file.in_test.get(t.line).copied().unwrap_or(false) {
            continue;
        }
        let close = mat[open].unwrap_or(toks.len().saturating_sub(1));
        let has_ordering = (open..close)
            .any(|k| toks[k].is("Ordering") && toks.get(k + 1).is_some_and(|n| n.is_punct("::")));
        if !has_ordering {
            out.violations.push(Violation::error(
                "atomics-confinement",
                &file.rel,
                t.line + 1,
                t.col + 1,
                format!(
                    "atomic `.{}(..)` without an explicit `Ordering::` argument",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::{rules, Tree};

    #[test]
    fn raw_spawn_outside_pool_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["no-raw-spawn"]);
    }

    #[test]
    fn raw_spawn_in_pool_test_mod_or_bin_is_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/pool.rs",
            "pub fn f() { thread::Builder::new(); }\n",
        );
        t.write(
            "crates/demo/src/bin/bench.rs",
            "fn main() { std::thread::spawn(|| {}); }\n",
        );
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::spawn(|| {}).join().unwrap(); }\n}\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn shard_pool_is_the_only_new_spawn_site() {
        // The shard supervisors may spawn (each owns a worker pool);
        // the rest of the scan-shard crate — the executor in
        // particular — must go through them.
        let t = Tree::new();
        t.write(
            "crates/scan-shard/src/pool.rs",
            "pub fn f() { thread::Builder::new(); }\n",
        );
        t.write(
            "crates/scan-shard/src/executor.rs",
            "pub fn f() { std::thread::spawn(|| {}); }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["no-raw-spawn"]);
        assert_eq!(vs[0].path, "crates/scan-shard/src/executor.rs");
    }

    #[test]
    fn raw_clock_outside_deadline_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() { let _ = std::time::Instant::now(); }\n",
        );
        assert_eq!(rules(&t.lint()), vec!["no-raw-clock"]);
    }

    #[test]
    fn serving_crate_is_covered_by_spawn_and_clock_confinement() {
        // The serving layer's leader–follower design depends on these
        // rules having no carve-out for it: a dispatcher thread or a
        // raw clock in `scan-service` library code must be caught
        // exactly like anywhere else — its timing flows through
        // `ScanDeadline` tokens and its workforce is the submitters.
        let t = Tree::new();
        t.write(
            "crates/scan-service/src/service.rs",
            "pub fn lead() { std::thread::spawn(|| {}); let _ = std::time::Instant::now(); }\n",
        );
        let mut vs = rules(&t.lint());
        vs.sort_unstable();
        assert_eq!(vs, vec!["no-raw-clock", "no-raw-spawn"]);
    }

    #[test]
    fn simd_dispatch_outside_simd_module_is_flagged() {
        let t = Tree::new();
        // Runtime detection smuggled into an engine module...
        t.write(
            "crates/scan-core/src/parallel.rs",
            "pub fn fast() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n",
        );
        // ...a compile-time gate in a bench binary...
        t.write(
            "crates/demo/src/bin/bench.rs",
            "#[cfg(target_feature = \"avx2\")]\nfn main() {}\n",
        );
        // ...and a `#[target_feature]` kernel outside the dispatch module.
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\n#[target_feature(enable = \"avx2\")]\nfn k() {}\n",
        );
        let mut vs = rules(&t.lint());
        vs.sort_unstable();
        assert_eq!(
            vs,
            vec!["simd-confinement", "simd-confinement", "simd-confinement"]
        );
    }

    #[test]
    fn simd_dispatch_in_simd_module_is_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/simd.rs",
            "#[target_feature(enable = \"avx2\")]\nfn k() {}\npub fn have() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn raw_clock_in_deadline_is_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/deadline.rs",
            "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    // -- R8 ------------------------------------------------------------------

    #[test]
    fn atomics_outside_sync_modules_are_flagged() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\nuse std::sync::atomic::{AtomicUsize, Ordering};\npub fn f(a: &AtomicUsize) { a.store(1, Ordering::Relaxed); }\n",
        );
        let vs = t.lint();
        assert_eq!(
            rules(&vs),
            vec!["atomics-confinement", "atomics-confinement"],
            "one finding per offending line"
        );
        assert_eq!(vs[0].line, 2);
        assert_eq!(vs[1].line, 3);
    }

    #[test]
    fn atomics_in_sync_modules_are_allowed() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/sync.rs",
            "pub use std::sync::atomic::{AtomicUsize, Ordering};\npub fn bump(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }\n",
        );
        t.write(
            "crates/scan-shard/src/pool.rs",
            "use std::sync::atomic::{AtomicBool, Ordering};\npub fn flag(a: &AtomicBool) { a.store(true, Ordering::Release); }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn atomic_in_test_mod_is_exempt() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU32, Ordering};\n    static N: AtomicU32 = AtomicU32::new(0);\n}\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_ordering() {
        let t = Tree::new();
        t.write(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\nuse std::cmp::Ordering;\npub fn f(a: u32, b: u32) -> Ordering { a.cmp(&b) }\npub fn g() -> Ordering { Ordering::Less }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn atomic_op_without_explicit_ordering_is_flagged() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/sync.rs",
            "use std::sync::atomic::Ordering::Relaxed;\nuse std::sync::atomic::AtomicUsize;\npub fn f(a: &AtomicUsize) { a.store(1, Relaxed); }\n",
        );
        let vs = t.lint();
        assert_eq!(rules(&vs), vec!["atomics-confinement"]);
        assert!(vs[0].msg.contains("explicit `Ordering::`"));
    }

    #[test]
    fn multi_line_atomic_op_with_ordering_passes() {
        let t = Tree::new();
        t.write(
            "crates/scan-core/src/lookback.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    a.compare_exchange(\n        0,\n        1,\n        Ordering::AcqRel,\n        Ordering::Acquire,\n    ).ok();\n}\n",
        );
        assert_eq!(t.lint(), vec![]);
    }

    #[test]
    fn non_atomic_load_method_is_not_flagged() {
        // `.load(` on a non-atomic receiver in an allowlisted file:
        // the rule only fires when the argument list lacks an
        // `Ordering::`, so keep such helpers named differently — but a
        // plain fn call `load_pair(..)` must never trip it.
        let t = Tree::new();
        t.write(
            "crates/scan-shard/src/pool.rs",
            "pub fn load_pair(d: &[u64], g: usize) -> u64 { d[g] }\npub fn f(d: &[u64]) -> u64 { load_pair(d, 0) }\n",
        );
        assert_eq!(t.lint(), vec![]);
    }
}
