//! Randomized chaos properties: under arbitrary seeded injection of
//! delays, panics, and lies, every fallible entry point returns either
//! a correct `Ok` or a typed error — it never hangs (per-case
//! wall-clock watchdog) and never lets a panic escape.
//!
//! Inputs straddle `PAR_THRESHOLD` so the blocked kernels genuinely
//! run on the pinned 4-worker pool, and every case is exercised under
//! both the `Pooled` and `Spawn` schedules.

use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

use proptest::prelude::*;
use scan_core::parallel::{self, Schedule};
use scan_core::simulate::{PrimitiveScans, SoftwareScans};
use scan_core::{ExecError, ScanDeadline};
use scan_fault::{chaos_op, ChaosBackend, ChaosPlan, CheckedExecutor, FaultError};

static INIT: Once = Once::new();

fn setup() {
    INIT.call_once(|| {
        std::env::set_var("SCAN_CORE_THREADS", "4");
        assert_eq!(scan_core::pool::global().threads(), 4);
    });
}

/// Hard per-case watchdog: the property fails (rather than wedging the
/// suite) if a case neither returns nor panics in time.
fn with_timeout<R: Send + 'static>(
    limit: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = handle.join();
            r
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without sending or panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("chaos case hung past {limit:?}"),
    }
}

const CASE_LIMIT: Duration = Duration::from_secs(20);

fn reference_plus_scan(a: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut acc = 0u64;
    for &x in a {
        out.push(acc);
        acc = acc.wrapping_add(x);
    }
    out
}

/// Delays are kept short and sparse so an undeadlined case still
/// finishes well inside the watchdog window.
fn plan_from(seed: u64, panic_every: u64, delay_every: u64, lie_every: u64) -> ChaosPlan {
    ChaosPlan {
        // 0 stays 0 (disabled); otherwise keep the period ≥ 16.
        delay_every: if delay_every == 0 { 0 } else { 16 + delay_every },
        delay_us: 20,
        panic_every,
        lie_every,
        ..ChaosPlan::quiet(seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every fallible kernel entry point under operator-level chaos:
    /// `Ok` implies the exact reference result; `Err` is a typed
    /// `ExecError`; nothing hangs or panics through the API.
    #[test]
    fn try_kernels_are_total_under_chaos(
        seed in proptest::strategy::any::<u64>(),
        n in 16_400usize..40_000,
        panic_every in 0u64..4_000,
        delay_every in 0u64..64,
        deadline_ms in 0u64..8,
        pooled in proptest::strategy::any::<bool>(),
    ) {
        setup();
        let sched = if pooled { Schedule::Pooled } else { Schedule::Spawn };
        let (got, reference, clean) = with_timeout(CASE_LIMIT, move || {
            let a: Vec<u64> = (0..n as u64).map(|x| x.wrapping_mul(0x9E37) % 1013).collect();
            let plan = plan_from(seed, panic_every, delay_every, 0);
            let body = move || {
                let scan = parallel::try_exclusive_scan_by_sched(
                    sched,
                    &a,
                    0u64,
                    chaos_op(plan, |x: u64, y| x.wrapping_add(y)),
                );
                let reduce = parallel::try_reduce_by_sched(
                    sched,
                    &a,
                    0u64,
                    chaos_op(plan, |x: u64, y| x.wrapping_add(y)),
                );
                let incl = parallel::try_inclusive_scan_by(
                    &a,
                    0u64,
                    chaos_op(plan, |x: u64, y| x.wrapping_add(y)),
                );
                (scan, reduce, incl, a.clone())
            };
            let out = if deadline_ms > 0 {
                let d = ScanDeadline::after(Duration::from_millis(deadline_ms));
                scan_core::deadline::with_deadline(&d, body)
            } else {
                body()
            };
            // The pool must be reusable after whatever the case did to
            // it — still inside the watchdog, so a wedged pool fails
            // the case rather than the suite.
            let clean = parallel::try_exclusive_scan_by_sched(
                sched,
                &[1u64, 2, 3, 4],
                0,
                |x: u64, y| x + y,
            );
            ((out.0, out.1, out.2), out.3, clean)
        });
        let expect = reference_plus_scan(&reference);
        let total: u64 = reference.iter().fold(0u64, |s, &x| s.wrapping_add(x));
        let (scan, reduce, incl) = got;
        match scan {
            Ok(out) => prop_assert_eq!(out, expect.clone()),
            Err(e) => prop_assert!(matches!(
                e,
                ExecError::WorkerLost { .. } | ExecError::DeadlineExceeded | ExecError::Cancelled
            )),
        }
        match reduce {
            Ok(out) => prop_assert_eq!(out, total),
            Err(e) => prop_assert!(matches!(
                e,
                ExecError::WorkerLost { .. } | ExecError::DeadlineExceeded | ExecError::Cancelled
            )),
        }
        match incl {
            Ok(out) => {
                prop_assert_eq!(out.last().copied(), Some(total));
                prop_assert_eq!(out[0], reference[0]);
            }
            Err(e) => prop_assert!(matches!(
                e,
                ExecError::WorkerLost { .. } | ExecError::DeadlineExceeded | ExecError::Cancelled
            )),
        }
        prop_assert_eq!(clean, Ok(vec![0, 1, 3, 6]));
    }

    /// `CheckedExecutor` under backend-level chaos: the checked calls
    /// return a verified result or a typed `FaultError`; the trait
    /// view always serves the exact reference scan.
    #[test]
    fn checked_executor_is_total_under_chaos(
        seed in proptest::strategy::any::<u64>(),
        n in 16_400usize..40_000,
        panic_every in 0u64..6,
        lie_every in 0u64..6,
        delay_every in 0u64..4,
        retries in 0u32..3,
        scans in 1usize..12,
    ) {
        setup();
        let ok = with_timeout(CASE_LIMIT, move || {
            let a: Vec<u64> = (0..n as u64).map(|x| (x ^ seed) % 4093).collect();
            let good = reference_plus_scan(&a);
            let plan = plan_from(seed, panic_every, delay_every, lie_every);
            let ex = CheckedExecutor::new(Box::new(ChaosBackend::new(SoftwareScans, plan)))
                .with_fallback(Box::new(SoftwareScans))
                .with_retries(retries);
            for _ in 0..scans {
                match ex.checked_plus_scan(&a) {
                    Ok(out) => assert_eq!(out, good, "a verified Ok must be the truth"),
                    Err(FaultError::RetriesExhausted { .. }) | Err(FaultError::Exec(_)) => {}
                    Err(e) => panic!("unexpected error class: {e:?}"),
                }
                // The infallible view must always serve the truth.
                assert_eq!(ex.plus_scan(&a), good);
            }
            true
        });
        prop_assert!(ok);
    }

    /// Checked vector ops keep rejecting adversarial inputs with typed
    /// errors (never panics) while chaos runs in the same process.
    #[test]
    fn checked_ops_stay_typed_under_adversarial_inputs(
        seed in proptest::strategy::any::<u64>(),
        n in 4usize..64,
    ) {
        setup();
        let dup = scan_fault::plan::adversarial::duplicate_permute_indices(n, seed);
        let vals: Vec<u64> = (0..n as u64).collect();
        prop_assert!(scan_core::ops::try_permute(&vals, &dup).is_err());
        let oob = scan_fault::plan::adversarial::out_of_bounds_indices(n, seed);
        prop_assert!(scan_core::ops::try_gather(&vals, &oob).is_err());
        let flags = scan_fault::plan::adversarial::mismatched_flags(n, seed);
        prop_assert!(scan_core::ops::try_pack(&vals, &flags).is_err());
        // And with an expired ambient deadline, the same calls bail
        // with the Exec taxonomy instead of doing the work.
        let d = ScanDeadline::after(Duration::ZERO);
        let idx: Vec<usize> = (0..n).collect();
        let got = scan_core::deadline::with_deadline(&d, || {
            scan_core::ops::try_permute(&vals, &idx)
        });
        prop_assert_eq!(
            got.unwrap_err(),
            scan_core::Error::Exec(ExecError::DeadlineExceeded)
        );
    }
}
