//! Chaos coverage for the fused `multi_split` kernel and the sort
//! built on it: injected key-function panics, delays, cancellation,
//! and deadlines must always terminate as a typed error or a correct
//! result — and the worker pool must stay usable afterwards.

use scan_algorithms::sort::fused_radix::{fused_radix_sort, try_fused_radix_sort_digits};
use scan_core::multi_split::{
    try_multi_split_into_sched, MultiSplitScratch,
};
use scan_core::parallel::{Schedule, PAR_THRESHOLD};
use scan_core::{deadline, Error, ExecError, ScanDeadline};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

static INIT: Once = Once::new();

/// Pin the pool to 4 lanes so the chaos genuinely crosses threads.
fn setup() {
    INIT.call_once(|| {
        std::env::set_var("SCAN_CORE_THREADS", "4");
        assert_eq!(scan_core::pool::global().threads(), 4);
    });
}

fn keys(mut seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (z ^ (z >> 31)) & 0xFFFF
        })
        .collect()
}

const PAR_SCHEDULES: [Schedule; 2] = [Schedule::Pooled, Schedule::Spawn];

#[test]
fn panicking_key_is_contained_as_worker_lost_and_pool_recovers() {
    setup();
    let n = PAR_THRESHOLD * 2;
    let ks = keys(1, n);
    for sched in PAR_SCHEDULES {
        let calls = AtomicU64::new(0);
        let mut dst = vec![0u64; n];
        let mut scratch = MultiSplitScratch::new();
        let r = try_multi_split_into_sched(
            sched,
            &ks,
            &mut dst,
            16,
            |k| {
                // Panic deep inside one block, mid-histogram.
                if calls.fetch_add(1, Ordering::Relaxed) == (n / 2) as u64 {
                    panic!("chaos: key function exploded");
                }
                (k & 15) as usize
            },
            &mut scratch,
        );
        assert!(
            matches!(r, Err(Error::Exec(ExecError::WorkerLost { .. }))),
            "sched={sched:?} got {r:?}"
        );
        // The pool respawned its worker: the next submission succeeds
        // and is correct.
        let mut expect = ks.clone();
        expect.sort_unstable();
        assert_eq!(fused_radix_sort(&ks, 16), expect, "sched={sched:?}");
    }
}

#[test]
fn expired_deadline_is_typed_under_both_schedules() {
    setup();
    let ks = keys(2, PAR_THRESHOLD * 2);
    for sched in PAR_SCHEDULES {
        let d = ScanDeadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        let r = deadline::with_deadline(&d, || {
            let mut dst = vec![0u64; ks.len()];
            let mut scratch = MultiSplitScratch::new();
            try_multi_split_into_sched(sched, &ks, &mut dst, 256, |k| (k & 255) as usize, &mut scratch)
        });
        assert_eq!(
            r,
            Err(Error::Exec(ExecError::DeadlineExceeded)),
            "sched={sched:?}"
        );
    }
}

#[test]
fn slow_key_under_deadline_terminates_typed_or_correct() {
    setup();
    // A key function slowed by injected delays races a short deadline:
    // the only legal outcomes are a correct sort or a typed error.
    let ks = keys(3, PAR_THRESHOLD + 123);
    let mut expect = ks.clone();
    expect.sort_unstable();
    for case in 0..4u64 {
        let d = ScanDeadline::after(Duration::from_micros(50 + case * 200));
        let r = deadline::with_deadline(&d, || try_fused_radix_sort_digits(&ks, 16, 8));
        match r {
            Ok(sorted) => assert_eq!(sorted, expect, "case={case}"),
            Err(Error::Exec(ExecError::DeadlineExceeded | ExecError::Cancelled)) => {}
            Err(e) => panic!("case={case}: unexpected error {e:?}"),
        }
    }
}

#[test]
fn cancellation_mid_sort_is_typed_and_state_is_reusable() {
    setup();
    let ks = keys(4, PAR_THRESHOLD * 2);
    let d = ScanDeadline::manual();
    d.cancel();
    let r = deadline::with_deadline(&d, || try_fused_radix_sort_digits(&ks, 16, 4));
    assert_eq!(r, Err(Error::Exec(ExecError::Cancelled)));
    // No ambient deadline: the same input sorts fine afterwards.
    let mut expect = ks.clone();
    expect.sort_unstable();
    assert_eq!(try_fused_radix_sort_digits(&ks, 16, 4).unwrap(), expect);
}

#[test]
fn out_of_range_bucket_is_typed_not_a_crash() {
    setup();
    let ks = keys(5, PAR_THRESHOLD * 2);
    for sched in PAR_SCHEDULES {
        let mut dst = vec![0u64; ks.len()];
        let mut scratch = MultiSplitScratch::new();
        let r = try_multi_split_into_sched(
            sched,
            &ks,
            &mut dst,
            8,
            |k| (k & 15) as usize, // up to 15 ≥ 8 buckets
            &mut scratch,
        );
        assert!(
            matches!(r, Err(Error::IndexOutOfBounds { len: 8, .. })),
            "sched={sched:?} got {r:?}"
        );
    }
}
