//! Deterministic end-to-end resilience scenarios: each named failure
//! mode from the chaos harness must terminate with a correct result or
//! a typed error — never a hang, never a panic across the API
//! boundary.
//!
//! Every scenario runs under a hard wall-clock watchdog thread, so a
//! regression that deadlocks the pool or loses a bail signal fails the
//! suite instead of wedging it.

use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

use scan_core::parallel::{self, Schedule, PAR_THRESHOLD};
use scan_core::{ExecError, ScanDeadline};
use scan_fault::{chaos_op, BreakerConfig, ChaosBackend, ChaosPlan, CheckedExecutor};

static INIT: Once = Once::new();

/// Pin the pool width to 4 before the lazy global pool initializes,
/// so the parallel paths genuinely run even on a single-core CI box.
fn setup() {
    INIT.call_once(|| {
        std::env::set_var("SCAN_CORE_THREADS", "4");
        assert_eq!(scan_core::pool::global().threads(), 4);
    });
}

/// Run `f` on its own thread and fail loudly if it neither returns nor
/// panics within `limit` — the no-hang guarantee, enforced.
fn with_timeout<R: Send + 'static>(
    limit: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = handle.join();
            r
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without sending or panicking"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("scenario hung past {limit:?}"),
    }
}

fn reference_plus_scan(a: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut acc = 0u64;
    for &x in a {
        out.push(acc);
        acc = acc.wrapping_add(x);
    }
    out
}

/// Scenario 1: an operator that panics mid-scan on a worker thread is
/// contained as `WorkerLost`, the pool survives, and the very next
/// clean submission succeeds on the same pool.
#[test]
fn induced_worker_panic_is_typed_and_pool_recovers() {
    setup();
    with_timeout(Duration::from_secs(30), || {
        let n = 2 * PAR_THRESHOLD;
        let a: Vec<u64> = (0..n as u64).collect();
        for sched in [Schedule::Pooled, Schedule::Spawn] {
            let plan = ChaosPlan {
                panic_every: 1000,
                ..ChaosPlan::quiet(3)
            };
            let op = chaos_op(plan, |x: u64, y: u64| x.wrapping_add(y));
            let got = parallel::try_exclusive_scan_by_sched(sched, &a, 0u64, op);
            assert!(
                matches!(got, Err(ExecError::WorkerLost { panics }) if panics >= 1),
                "{sched:?}: expected WorkerLost, got {got:?}"
            );
            // Clean resubmission on the recovered pool.
            let clean =
                parallel::try_exclusive_scan_by_sched(sched, &a, 0u64, |x: u64, y| {
                    x.wrapping_add(y)
                });
            assert_eq!(clean.as_deref(), Ok(&reference_plus_scan(&a)[..]), "{sched:?}");
        }
    });
}

/// Scenario 2: injected delays push a scan past its deadline; the
/// kernel notices at a block-interior checkpoint and bails with
/// `DeadlineExceeded` instead of sleeping through the whole input.
#[test]
fn delay_past_deadline_is_typed() {
    setup();
    with_timeout(Duration::from_secs(30), || {
        let n = 2 * PAR_THRESHOLD;
        let a: Vec<u64> = vec![1; n];
        for sched in [Schedule::Pooled, Schedule::Spawn] {
            let plan = ChaosPlan {
                delay_every: 32,
                delay_us: 200,
                ..ChaosPlan::quiet(11)
            };
            let op = chaos_op(plan, |x: u64, y: u64| x.wrapping_add(y));
            let d = ScanDeadline::after(Duration::from_millis(2));
            let got = scan_core::deadline::with_deadline(&d, || {
                parallel::try_exclusive_scan_by_sched(sched, &a, 0u64, op)
            });
            assert_eq!(
                got.unwrap_err(),
                ExecError::DeadlineExceeded,
                "{sched:?}: a delayed scan must report its deadline"
            );
        }
    });
}

/// Scenario 3: a persistently lying backend is detected every scan,
/// the breaker quarantines it (observably via stats), and a probation
/// probe re-admits it once it heals.
#[test]
fn lying_backend_is_quarantined_then_readmitted_after_healing() {
    setup();
    with_timeout(Duration::from_secs(30), || {
        use scan_core::simulate::{PrimitiveScans, SoftwareScans};

        // Lies on every one of its first 3 calls, truthful afterwards:
        // a transient corruption that heals mid-campaign.
        let flaky = ChaosBackend::new(SoftwareScans, ChaosPlan {
            lie_every: 1,
            ..ChaosPlan::quiet(17)
        });
        struct HealingLiar {
            inner: ChaosBackend<SoftwareScans>,
            heal_after: u64,
        }
        impl PrimitiveScans for HealingLiar {
            fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
                if self.inner.calls() >= self.heal_after {
                    SoftwareScans.plus_scan(a)
                } else {
                    self.inner.plus_scan(a)
                }
            }
            fn max_scan(&self, a: &[u64]) -> Vec<u64> {
                if self.inner.calls() >= self.heal_after {
                    SoftwareScans.max_scan(a)
                } else {
                    self.inner.max_scan(a)
                }
            }
        }

        let ex = CheckedExecutor::new(Box::new(HealingLiar {
            inner: flaky,
            heal_after: 3,
        }))
        .with_fallback(Box::new(SoftwareScans))
        .with_retries(0)
        .with_breaker(BreakerConfig {
            failure_threshold: 2,
            base_quarantine: 3,
            max_quarantine: 16,
            jitter: 0, // the clock walkthrough below assumes exact quarantines
            jitter_seed: 0,
        });

        let a: Vec<u64> = (0..64).map(|i| (i * 9) % 41).collect();
        let good = reference_plus_scan(&a);
        // Clocks 0 and 1: the liar is attempted, rejected, and the
        // second consecutive failure opens the breaker (until = 4).
        for _ in 0..2 {
            assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        }
        assert_eq!(ex.stats().detections, 2);
        assert_eq!(ex.backend_health(0).quarantines, 1);
        // Clocks 2 and 3: skipped — the fallback serves alone.
        for _ in 2..4 {
            assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        }
        assert_eq!(
            ex.backend_health(0).skipped,
            2,
            "quarantined backend must be skipped, observably"
        );
        // Clock 4: probe. The liar has made 2 calls and heals after 3,
        // so the probe (call 3) still lies — re-opened, doubled backoff.
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        let h = ex.backend_health(0);
        assert_eq!((h.probes, h.quarantines), (1, 2));
        // Clocks 5..=9: quarantined again (backoff doubled to 6).
        for _ in 5..10 {
            assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        }
        // Clock 10: probe again — the backend has healed; re-admitted.
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        let h = ex.backend_health(0);
        assert_eq!(h.probes, 2);
        assert_eq!(h.state, scan_fault::BreakerState::Closed);
        // From here the healed primary serves every scan directly.
        let fallbacks = ex.stats().fallbacks;
        for _ in 0..4 {
            assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        }
        assert_eq!(ex.stats().fallbacks, fallbacks, "no fallback after healing");
    });
}

/// Scenario 4: chaos panics inside a `CheckedExecutor` backend stay
/// inside it even when the backend's scans run on the worker pool at
/// parallel sizes.
#[test]
fn pooled_chaos_backend_never_leaks_panics() {
    setup();
    with_timeout(Duration::from_secs(60), || {
        use scan_core::simulate::SoftwareScans;
        let n = PAR_THRESHOLD + 123;
        let a: Vec<u64> = (0..n as u64).map(|x| x % 257).collect();
        let good = reference_plus_scan(&a);
        let plan = ChaosPlan {
            panic_every: 3,
            lie_every: 2,
            ..ChaosPlan::quiet(23)
        };
        let ex = CheckedExecutor::new(Box::new(ChaosBackend::new(SoftwareScans, plan)))
            .with_fallback(Box::new(SoftwareScans));
        for _ in 0..20 {
            // The trait view must always serve the truth.
            use scan_core::simulate::PrimitiveScans;
            assert_eq!(ex.plus_scan(&a), good);
        }
        let h = ex.backend_health(0);
        assert!(h.panics > 0, "the schedule must have injected panics");
        assert!(ex.stats().detections > 0, "and lies");
    });
}
