//! The checked executor must keep verifying results when the software
//! backend runs its blocked kernels on the persistent worker pool.
//!
//! The seed executor was only ever exercised at sizes far below the
//! parallel threshold, so every checked scan it had verified was
//! sequential. These tests push inputs past `PAR_THRESHOLD` with the
//! pool pinned to 4 workers, proving the self-check chain holds over
//! the multi-threaded engine.

use scan_core::parallel::PAR_THRESHOLD;
use scan_core::simulate::SoftwareScans;
use scan_fault::CheckedExecutor;
use std::sync::Once;

static INIT: Once = Once::new();

/// Pin the pool width to 4 before the lazy global pool initializes,
/// so the parallel paths genuinely run even on a single-core CI box.
fn setup() {
    INIT.call_once(|| {
        std::env::set_var("SCAN_CORE_THREADS", "4");
        assert_eq!(scan_core::pool::global().threads(), 4);
    });
}

fn splitmix(mut seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

#[test]
fn checked_executor_verifies_pooled_scans() {
    setup();
    let n = 2 * PAR_THRESHOLD + 7;
    let a = splitmix(0xC0FFEE, n);

    let mut plus_ref = Vec::with_capacity(n);
    let mut acc = 0u64;
    for &x in &a {
        plus_ref.push(acc);
        acc = acc.wrapping_add(x);
    }
    let mut max_ref = Vec::with_capacity(n);
    let mut acc = 0u64;
    for &x in &a {
        max_ref.push(acc);
        acc = acc.max(x);
    }

    let executor = CheckedExecutor::new(Box::new(SoftwareScans));
    let plus = executor.checked_plus_scan(&a).expect("plus scan rejected");
    let max = executor.checked_max_scan(&a).expect("max scan rejected");
    assert_eq!(plus, plus_ref, "pooled +-scan corrupted");
    assert_eq!(max, max_ref, "pooled max-scan corrupted");

    let stats = executor.stats();
    assert_eq!(stats.scans, 2);
    assert_eq!(
        stats.detections, 0,
        "a correct pooled backend must not trip the checker"
    );
    assert_eq!(stats.fallbacks, 0);
}

#[test]
fn checked_executor_pooled_across_threshold_sizes() {
    setup();
    let executor = CheckedExecutor::new(Box::new(SoftwareScans));
    for n in [PAR_THRESHOLD - 1, PAR_THRESHOLD, PAR_THRESHOLD + 1] {
        let a = splitmix(n as u64, n);
        let got = executor.checked_plus_scan(&a).expect("scan rejected");
        let mut acc = 0u64;
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(got[i], acc, "mismatch at {i} for n={n}");
            acc = acc.wrapping_add(x);
        }
    }
    assert_eq!(executor.stats().detections, 0);
}
