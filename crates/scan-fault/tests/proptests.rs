//! Property tests for the robustness layer:
//!
//! 1. **No-panic invariant** — every checked (`try_*`) vector
//!    operation and every VM instruction returns `Ok` or a typed
//!    error on *arbitrary* (including hostile) inputs; it never
//!    panics.
//! 2. **Verifier soundness on accepted runs** — for every scan that
//!    executes successfully (forward, backward, segmented; `+`, `max`,
//!    `min`, `or`, `and`), the O(n) postcondition verifier accepts the
//!    output.

use proptest::prelude::*;
use scan_core::ops::{self, Bucket};
use scan_core::segops;
use scan_core::{And, Max, Min, Or, Segments, Sum};
use scan_fault::{verify_scan, verify_scan_backward, verify_seg_scan, verify_seg_scan_backward};
use scan_pram::{Ctx, Instr, Model, Vm, VmLimits};

fn seg_from_seed(n: usize, seed: u64) -> Segments {
    Segments::from_flags(
        (0..n)
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).is_multiple_of(4))
            .collect(),
    )
}

proptest! {
    // ---- 1a. try_* ops never panic, whatever the shapes. ----

    #[test]
    fn try_ops_never_panic(
        a in proptest::collection::vec(any::<u64>(), 0..120),
        idx in proptest::collection::vec(0usize..150, 0..120),
        flags in proptest::collection::vec(any::<bool>(), 0..120),
        counts in proptest::collection::vec(0usize..6, 0..120),
        seed in any::<u64>(),
    ) {
        // Deliberately mismatched lengths, duplicate and out-of-range
        // indices: each call must return Ok or a typed error.
        let _ = ops::try_copy_first(&a);
        let _ = ops::try_permute(&a, &idx);
        let _ = ops::try_gather(&a, &idx);
        let _ = ops::try_split(&a, &flags);
        let _ = ops::try_split_count(&a, &flags);
        let _ = ops::try_pack(&a, &flags);
        let _ = ops::try_select(&flags, &a, &a);
        let buckets: Vec<Bucket> = idx
            .iter()
            .map(|&i| match i % 3 {
                0 => Bucket::Lo,
                1 => Bucket::Mid,
                _ => Bucket::Hi,
            })
            .collect();
        let _ = ops::try_split3(&a, &buckets);
        let b: Vec<u64> = a.iter().rev().copied().collect();
        let _ = ops::try_flag_merge(&flags, &a, &b);
        let segs = seg_from_seed(flags.len(), seed);
        let _ = segops::try_seg_copy(&a, &segs);
        let _ = segops::try_seg_reduce::<Sum, _>(&a, &segs);
        let _ = segops::try_seg_distribute::<Max, _>(&a, &segs);
        let _ = segops::try_seg_split(&a, &flags, &segs);
        let _ = segops::try_seg_split3(&a, &buckets, &segs);
        let _ = scan_core::allocate::try_distribute(&a, &counts);
    }

    // ---- 1b. Ok results imply the documented postcondition. ----

    #[test]
    fn try_ops_ok_implies_postcondition(
        a in proptest::collection::vec(any::<u64>(), 0..120),
        idx in proptest::collection::vec(0usize..150, 0..120),
        flags in proptest::collection::vec(any::<bool>(), 0..120),
    ) {
        if let Ok(g) = ops::try_gather(&a, &idx) {
            prop_assert_eq!(g.len(), idx.len());
            for (k, &i) in idx.iter().enumerate() {
                prop_assert_eq!(g[k], a[i]);
            }
        }
        if let Ok(p) = ops::try_permute(&a, &idx) {
            prop_assert_eq!(p.len(), a.len());
            for (k, &i) in idx.iter().enumerate() {
                prop_assert_eq!(p[i], a[k], "permute sends a[k] to idx[k]");
            }
        }
        if let Ok(packed) = ops::try_pack(&a, &flags) {
            let expect: Vec<u64> = a
                .iter()
                .zip(&flags)
                .filter(|(_, &k)| k)
                .map(|(&x, _)| x)
                .collect();
            prop_assert_eq!(packed, expect);
        }
    }

    // ---- 1c. VM instructions never panic on hostile registers. ----

    #[test]
    fn vm_instructions_never_panic(
        a in proptest::collection::vec(any::<u64>(), 0..60),
        b in proptest::collection::vec(any::<u64>(), 0..60),
        idx in proptest::collection::vec(0u64..80, 0..60),
        seed in any::<u64>(),
    ) {
        let mut vm = Vm::with_limits(
            Model::Scan,
            VmLimits::default()
                .with_max_steps(10_000)
                .with_max_register_words(1 << 16),
        );
        vm.load("a", a.clone());
        vm.load("b", b.clone());
        vm.load("idx", idx.clone());
        vm.load("flags", a.iter().map(|&x| x & 1).collect());
        // Every instruction kind, many with mismatched operand shapes:
        // each step returns Ok or a typed VmError, never panics.
        let program = [
            Instr::Const { dst: "c", like: "a", value: seed },
            Instr::Iota { dst: "i", like: "b" },
            Instr::Add { dst: "t", a: "a", b: "b" },
            Instr::Sub { dst: "t", a: "a", b: "idx" },
            Instr::MinV { dst: "t", a: "b", b: "idx" },
            Instr::MaxV { dst: "t", a: "a", b: "a" },
            Instr::Bit { dst: "t", src: "a", amount: (seed % 64) as u32 },
            Instr::Lt { dst: "t", a: "a", b: "b" },
            Instr::Eq { dst: "t", a: "a", b: "flags" },
            Instr::Select { dst: "t", cond: "flags", a: "a", b: "b" },
            Instr::PlusScan { dst: "t", src: "a" },
            Instr::MaxScan { dst: "t", src: "b" },
            Instr::SegPlusScan { dst: "t", src: "a", flags: "flags" },
            Instr::SegMaxScan { dst: "t", src: "a", flags: "idx" },
            Instr::Enumerate { dst: "t", flags: "flags" },
            Instr::Permute { dst: "t", src: "a", idx: "idx" },
            Instr::Gather { dst: "t", src: "b", idx: "idx" },
            Instr::Split { dst: "t", src: "a", flags: "flags" },
            Instr::PlusDistribute { dst: "t", src: "a" },
            Instr::MinDistribute { dst: "t", src: "b" },
            Instr::Gather { dst: "t", src: "a", idx: "missing" },
        ];
        for instr in program {
            let _ = vm.step(instr);
        }
    }

    // ---- 2. The verifier accepts every scan that returns Ok. ----

    #[test]
    fn verifier_accepts_every_ok_scan(
        a in proptest::collection::vec(any::<u64>(), 0..400),
        seed in any::<u64>(),
    ) {
        // Unsegmented, all five operators, forward and backward.
        verify_scan::<Sum, _>(&a, &scan_core::scan::<Sum, _>(&a)).unwrap();
        verify_scan::<Max, _>(&a, &scan_core::scan::<Max, _>(&a)).unwrap();
        verify_scan::<Min, _>(&a, &scan_core::scan::<Min, _>(&a)).unwrap();
        verify_scan::<Or, _>(&a, &scan_core::scan::<Or, _>(&a)).unwrap();
        verify_scan::<And, _>(&a, &scan_core::scan::<And, _>(&a)).unwrap();
        verify_scan_backward::<Sum, _>(&a, &scan_core::scan_backward::<Sum, _>(&a)).unwrap();
        verify_scan_backward::<Min, _>(&a, &scan_core::scan_backward::<Min, _>(&a)).unwrap();

        // Segmented, forward and backward.
        let segs = seg_from_seed(a.len(), seed);
        verify_seg_scan::<Sum, _>(&a, &segs, &scan_core::seg_scan::<Sum, _>(&a, &segs)).unwrap();
        verify_seg_scan::<Max, _>(&a, &segs, &scan_core::seg_scan::<Max, _>(&a, &segs)).unwrap();
        verify_seg_scan::<Or, _>(&a, &segs, &scan_core::seg_scan::<Or, _>(&a, &segs)).unwrap();
        verify_seg_scan_backward::<Sum, _>(
            &a,
            &segs,
            &scan_core::seg_scan_backward::<Sum, _>(&a, &segs),
        )
        .unwrap();
        verify_seg_scan_backward::<And, _>(
            &a,
            &segs,
            &scan_core::seg_scan_backward::<And, _>(&a, &segs),
        )
        .unwrap();
    }

    // ---- 2b. The same holds for Ctx-routed scans over a backend. ----

    #[test]
    fn verifier_accepts_ctx_routed_scans(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        use std::rc::Rc;
        use scan_core::simulate::SoftwareScans;
        let mut ctx = Ctx::new(Model::Scan).with_backend(Rc::new(SoftwareScans));
        verify_scan::<Sum, _>(&a, &ctx.scan::<Sum, _>(&a)).unwrap();
        verify_scan::<Max, _>(&a, &ctx.scan::<Max, _>(&a)).unwrap();
        verify_scan_backward::<Sum, _>(&a, &ctx.scan_backward::<Sum, _>(&a)).unwrap();
    }
}
