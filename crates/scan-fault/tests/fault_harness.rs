//! The fault-injection campaign of the issue's acceptance criteria:
//! drive the five headline algorithms (split radix sort, quicksort,
//! minimum spanning tree, line of sight, halving merge) through a
//! deliberately faulty circuit backend wrapped in a [`CheckedExecutor`]
//! and demand, for every run:
//!
//! - no panic,
//! - no silent corruption (results equal the fault-free reference),
//! - ≥ 100 *distinct* circuit bits flipped across the campaign,
//! - a printed single-bit fault detection rate.

use std::rc::Rc;

use scan_algorithms::geometry::line_of_sight::{line_of_sight, line_of_sight_ctx};
use scan_algorithms::graph::mst::minimum_spanning_tree_ctx;
use scan_algorithms::graph::reference::kruskal;
use scan_algorithms::merge::halving::halving_merge_ctx;
use scan_algorithms::sort::quicksort::{quicksort_ctx, PivotRule};
use scan_algorithms::sort::radix::split_radix_sort_ctx;
use scan_circuit::BitslicedScans;
use scan_core::simulate::SoftwareScans;
use scan_fault::{CheckedExecutor, FaultPlan, FaultyCircuitBackend, SplitMix64};
use scan_pram::{Ctx, Model};

const SEED: u64 = 0xB1E110C4;

/// A checked executor over a shared faulty circuit, so the test can
/// read the fault counters after the algorithms have run.
fn checked_faulty() -> (Rc<FaultyCircuitBackend>, Rc<CheckedExecutor>) {
    let faulty = Rc::new(FaultyCircuitBackend::new(64, FaultPlan::new(SEED)));
    let executor = CheckedExecutor::new(Box::new(faulty.clone()))
        .with_retries(2)
        .with_fallback(Box::new(BitslicedScans::new(64)))
        .with_fallback(Box::new(SoftwareScans));
    (faulty, Rc::new(executor))
}

fn ctx_with(executor: &Rc<CheckedExecutor>) -> Ctx {
    Ctx::new(Model::Scan).with_backend(executor.clone())
}

#[test]
fn five_headline_algorithms_survive_a_fault_campaign() {
    let (faulty, executor) = checked_faulty();
    let mut rng = SplitMix64(SEED ^ 0xDECAF);

    // 1. Split radix sort.
    let keys: Vec<u64> = (0..96).map(|_| rng.next() & 0xFFFF).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    let got = split_radix_sort_ctx(&mut ctx_with(&executor), &keys, 16);
    assert_eq!(got, expect, "radix sort corrupted");

    // 2. Quicksort.
    let keys: Vec<u64> = (0..80).map(|_| rng.next() & 0xFFFF).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    let got = quicksort_ctx(&mut ctx_with(&executor), &keys, PivotRule::Random(7));
    assert_eq!(got.keys, expect, "quicksort corrupted");

    // 3. Minimum spanning tree (random connected-ish graph).
    let n_vertices = 14;
    let mut edges: Vec<(usize, usize, u64)> = (1..n_vertices)
        .map(|v| (v - 1, v, rng.below(90) + 1))
        .collect();
    for _ in 0..24 {
        let u = rng.below(n_vertices as u64) as usize;
        let v = rng.below(n_vertices as u64) as usize;
        if u != v {
            edges.push((u, v, rng.below(90) + 1));
        }
    }
    let got = minimum_spanning_tree_ctx(&mut ctx_with(&executor), n_vertices, &edges, 11);
    let (expect_edges, expect_weight) = kruskal(n_vertices, &edges);
    assert_eq!(got.edges, expect_edges, "MST corrupted");
    assert_eq!(got.total_weight, expect_weight);

    // 4. Line of sight.
    let altitudes: Vec<f64> = (0..128)
        .map(|i| ((i as f64) * 0.37).sin() * 50.0 + (rng.below(100) as f64))
        .collect();
    let got = line_of_sight_ctx(&mut ctx_with(&executor), 10.0, &altitudes);
    assert_eq!(got, line_of_sight(10.0, &altitudes), "line of sight corrupted");

    // 5. Halving merge.
    let mut a: Vec<u64> = (0..64).map(|_| rng.next() & 0xFFFF).collect();
    let mut b: Vec<u64> = (0..64).map(|_| rng.next() & 0xFFFF).collect();
    a.sort_unstable();
    b.sort_unstable();
    let mut expect: Vec<u64> = a.iter().chain(&b).copied().collect();
    expect.sort_unstable();
    let got = halving_merge_ctx(&mut ctx_with(&executor), &a, &b);
    assert_eq!(got, expect, "halving merge corrupted");

    // Campaign accounting.
    let stats = executor.stats();
    let flips = faulty.flips();
    let distinct = faulty.distinct_sites_hit();
    assert!(
        distinct >= 100,
        "campaign must flip >= 100 distinct circuit bits, flipped {distinct}"
    );
    assert!(flips >= distinct as u64);
    assert!(
        stats.detections > 0,
        "a plan faulting every scan must trip the verifier"
    );
    assert_eq!(
        stats.rescues, 0,
        "the clean fallbacks must absorb every failure"
    );
    // Every scan the executor *returned* was verified, so corrupted
    // outputs and detections coincide: the undetected remainder of the
    // flips is exactly the masked (output-preserving) population.
    let rate = stats.detections as f64 / flips as f64;
    println!(
        "fault campaign: {} scans, {} landed single-bit flips over {} distinct sites, \
         {} detected ({} masked) -> single-bit fault detection rate {:.1}%, \
         {} retries, {} fallbacks, 0 rescues",
        stats.scans,
        flips,
        distinct,
        stats.detections,
        flips - stats.detections,
        rate * 100.0,
        stats.retries,
        stats.fallbacks
    );
    assert!(rate > 0.2, "implausibly low detection rate {rate}");
}

#[test]
fn campaign_is_reproducible_from_its_seed() {
    let run = || {
        let (faulty, executor) = checked_faulty();
        let keys: Vec<u64> = (0..48).map(|i| (i * 131) % 251).collect();
        let got = split_radix_sort_ctx(&mut ctx_with(&executor), &keys, 8);
        (got, executor.stats(), faulty.flips())
    };
    assert_eq!(run(), run(), "same seed must replay the same campaign");
}

#[test]
fn adversarial_inputs_surface_typed_errors_not_panics() {
    use scan_fault::plan::adversarial;

    for seed in 0..16u64 {
        let n = 12;
        let data: Vec<u64> = (0..n as u64).collect();

        let dup = adversarial::duplicate_permute_indices(n, seed);
        assert!(matches!(
            scan_core::ops::try_permute(&data, &dup),
            Err(scan_core::Error::DuplicateIndex { .. })
        ));

        let oob = adversarial::out_of_bounds_indices(n, seed);
        assert!(matches!(
            scan_core::ops::try_gather(&data, &oob),
            Err(scan_core::Error::IndexOutOfBounds { .. })
        ));

        let flags = adversarial::mismatched_flags(n, seed);
        assert!(matches!(
            scan_core::ops::try_pack(&data, &flags),
            Err(scan_core::Error::LengthMismatch { .. })
        ));

        let wide = adversarial::width_overflow_values(n, 8, seed);
        let mut circuit = scan_circuit::TreeScanCircuit::new(16);
        assert!(matches!(
            circuit.try_scan(scan_circuit::OpKind::Plus, &wide, 8),
            Err(scan_core::Error::WidthOverflow { .. })
        ));
    }
}

#[test]
fn vm_programs_on_faulty_backends_stay_typed() {
    use scan_pram::{Instr, Vm, VmLimits};

    // A VM with a tight budget over a checked faulty backend: the
    // program either completes with correct values or stops with a
    // typed budget error — never a panic, never silent corruption.
    let (_faulty, executor) = checked_faulty();
    let mut vm = Vm::with_ctx(Ctx::new(Model::Scan).with_backend(executor.clone()));
    vm.set_limits(VmLimits::default().with_max_steps(1_000));
    let data: Vec<u64> = (0..32).map(|i| (i * 7) % 101).collect();
    vm.load("a", data.clone());
    let program = [
        Instr::PlusScan { dst: "ps", src: "a" },
        Instr::MaxScan { dst: "ms", src: "a" },
    ];
    match vm.run(&program) {
        Ok(()) => {
            assert_eq!(
                vm.get("ps").unwrap(),
                scan_core::scan::<scan_core::Sum, _>(&data)
            );
            assert_eq!(
                vm.get("ms").unwrap(),
                scan_core::scan::<scan_core::Max, _>(&data)
            );
        }
        Err(e) => panic!("typed error unexpected for this budget: {e}"),
    }
}
