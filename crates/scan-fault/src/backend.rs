//! A deliberately faulty scan backend: the cycle-accurate tree circuit
//! with a [`FaultPlan`](crate::FaultPlan) injecting transient bit
//! flips while it runs.
//!
//! The backend honours the `PrimitiveScans` contract *interface* but
//! not its semantics — that is the point. Wrap it in a
//! [`CheckedExecutor`](crate::CheckedExecutor) to turn it back into a
//! trustworthy backend, or drive it bare to measure raw fault effects.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;

use scan_circuit::{FaultSite, OpKind, TreeScanCircuit};
use scan_core::simulate::PrimitiveScans;

use crate::plan::FaultPlan;

/// The tree circuit under a deterministic fault campaign.
#[derive(Debug)]
pub struct FaultyCircuitBackend {
    m_bits: u32,
    plan: FaultPlan,
    circuit: RefCell<Option<TreeScanCircuit>>,
    scan_index: Cell<u64>,
    flips: Cell<u64>,
    sites_hit: RefCell<HashSet<FaultSite>>,
}

impl FaultyCircuitBackend {
    /// A faulty backend over `m`-bit fields (1..=64) driven by `plan`.
    ///
    /// # Panics
    /// If `m_bits` is 0 or exceeds 64.
    pub fn new(m_bits: u32, plan: FaultPlan) -> Self {
        assert!((1..=64).contains(&m_bits), "field width must be 1..=64");
        FaultyCircuitBackend {
            m_bits,
            plan,
            circuit: RefCell::new(None),
            scan_index: Cell::new(0),
            flips: Cell::new(0),
            sites_hit: RefCell::new(HashSet::new()),
        }
    }

    /// Scans executed so far (clean and faulted).
    pub fn scans(&self) -> u64 {
        self.scan_index.get()
    }

    /// Bit flips that landed on real circuit state so far.
    pub fn flips(&self) -> u64 {
        self.flips.get()
    }

    /// Number of *distinct* circuit bits (fault sites) flipped so far
    /// — the campaign's coverage of the fault universe.
    pub fn distinct_sites_hit(&self) -> usize {
        self.sites_hit.borrow().len()
    }

    fn run(&self, op: OpKind, a: &[u64]) -> Vec<u64> {
        let index = self.scan_index.get();
        self.scan_index.set(index + 1);
        if a.is_empty() {
            return Vec::new();
        }
        let n = a.len().next_power_of_two();
        let mut slot = self.circuit.borrow_mut();
        if slot.as_ref().is_none_or(|c| c.n_leaves() < n) {
            *slot = None;
        }
        let circuit = slot.get_or_insert_with(|| TreeScanCircuit::new(n));
        let sites = circuit.fault_sites();
        let total_cycles = self.m_bits as u64
            + if circuit.levels() == 0 {
                0
            } else {
                2 * circuit.levels() as u64 - 1
            };
        let faults = self.plan.faults_for(index, &sites, total_cycles);
        let (run, applied) = circuit.scan_with_faults(op, a, self.m_bits, &faults);
        if applied > 0 {
            self.flips.set(self.flips.get() + applied as u64);
            let mut hit = self.sites_hit.borrow_mut();
            hit.extend(faults.iter().map(|f| f.site));
        }
        run.values
    }
}

impl PrimitiveScans for FaultyCircuitBackend {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(OpKind::Plus, a)
    }

    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(OpKind::Max, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::Sum;

    #[test]
    fn faulty_backend_is_deterministic() {
        let a: Vec<u64> = (0..32).map(|i| (i * 37) % 251).collect();
        let run = |seed: u64| {
            let b = FaultyCircuitBackend::new(64, FaultPlan::new(seed));
            let outs: Vec<Vec<u64>> = (0..8).map(|_| b.plus_scan(&a)).collect();
            (outs, b.flips())
        };
        assert_eq!(run(5), run(5), "same seed, same corruption");
        assert_eq!(run(5).0.len(), 8);
    }

    #[test]
    fn faults_corrupt_some_scans_and_coverage_accumulates() {
        let a: Vec<u64> = (0..64).map(|i| (i * 11) % 97).collect();
        let good = scan_core::scan::<Sum, _>(&a);
        let b = FaultyCircuitBackend::new(64, FaultPlan::new(99));
        let mut corrupted = 0;
        for _ in 0..50 {
            if b.plus_scan(&a) != good {
                corrupted += 1;
            }
        }
        assert!(corrupted > 5, "only {corrupted} of 50 faulted scans corrupted");
        assert!(b.flips() >= 40, "flips {} should land nearly every scan", b.flips());
        assert!(b.distinct_sites_hit() >= 20);
        assert_eq!(b.scans(), 50);
    }

    #[test]
    fn clean_plan_never_corrupts() {
        let a: Vec<u64> = (0..16).collect();
        let good = scan_core::scan::<Sum, _>(&a);
        // every(u64::MAX) faults only scan 0; skip it and the rest are
        // clean.
        let b = FaultyCircuitBackend::new(64, FaultPlan::new(1).every(u64::MAX));
        b.plus_scan(&a);
        for _ in 0..5 {
            assert_eq!(b.plus_scan(&a), good);
        }
    }
}
