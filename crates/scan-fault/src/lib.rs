//! # scan-fault
//!
//! Fault injection and self-checking execution for the scan stack.
//!
//! The paper's machine stakes everything on one primitive: if the scan
//! unit lies, every algorithm built on it (§4–§6) silently computes
//! garbage. This crate closes that gap in two moves:
//!
//! 1. **Deterministic fault injection** — [`FaultPlan`] schedules
//!    seed-reproducible transient bit flips into the cycle-accurate
//!    tree circuit (state machine bits, shift-register cells, and
//!    inter-unit wires — see `scan_circuit::FaultSite`), delivered by
//!    [`FaultyCircuitBackend`]; the [`plan::adversarial`] generators
//!    produce the hostile *inputs* (duplicate permute indices, length
//!    mismatches, width overflows) that the checked ops layer must
//!    reject with typed errors.
//! 2. **Self-checking execution** — the [`verify`] module checks a
//!    scan output in one O(n) pass using the exclusive-scan
//!    recurrence (`out[0] = identity`, `out[i] = out[i-1] ⊕ a[i-1]`,
//!    restarting at segment heads); the check passes *iff* the output
//!    equals the reference scan. [`CheckedExecutor`] wraps any
//!    `PrimitiveScans` backend with verify-and-retry plus a fallback
//!    chain (e.g. circuit → bit-sliced → software), so everything
//!    routed through it — including all of `scan_pram::Ctx` via
//!    `Ctx::with_backend` — returns correct results or a clean typed
//!    [`FaultError`], never silent corruption. A per-backend circuit
//!    breaker ([`BreakerConfig`]) quarantines persistently failing
//!    backends with exponential-backoff probation, and every backend
//!    call is panic-contained and deadline-aware.
//! 3. **Chaos harness** — [`ChaosPlan`] schedules seeded,
//!    reproducible delays, panics, and wrong results into backends
//!    ([`ChaosBackend`]) or scan operators ([`chaos_op`]), to
//!    demonstrate that the stack always terminates with a correct
//!    result or a typed error: never a hang, never a panic across the
//!    API boundary.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod breaker;
pub mod chaos;
pub mod error;
pub mod executor;
pub mod plan;
pub mod verify;

pub use backend::FaultyCircuitBackend;
pub use breaker::{Breaker, BreakerConfig, BreakerState, Gate};
pub use chaos::{chaos_op, ChaosBackend, ChaosEvent, ChaosPlan};
pub use error::{CorruptionKind, FaultError, Result};
pub use executor::{BackendHealth, CheckedExecutor, CheckedStats};
pub use plan::{FaultPlan, SplitMix64};
pub use verify::{verify_scan, verify_scan_backward, verify_seg_scan, verify_seg_scan_backward};
