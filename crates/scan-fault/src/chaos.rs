//! Deterministic chaos injection: delays, panics, and wrong results on
//! a seeded schedule.
//!
//! A [`ChaosPlan`] is a pure function from a 1-based call index to a
//! [`ChaosEvent`], so any run is reproducible from the plan alone. Two
//! adapters deliver the schedule into the scan stack:
//!
//! - [`ChaosBackend`] wraps any `PrimitiveScans` backend and injects
//!   the scheduled event per *scan call* — sleeping, panicking, or
//!   corrupting one output element. Feed it to a
//!   [`CheckedExecutor`](crate::CheckedExecutor) to exercise the
//!   verifier, breaker, and panic containment.
//! - [`chaos_op`] wraps a binary scan operator and injects delays and
//!   panics per *operator application* (never lies — a lying operator
//!   would make the scan's own output ill-defined). Feed it to the
//!   `scan_core::try_*` kernels to exercise deadline checkpoints and
//!   worker-panic recovery.
//!
//! The resilience contract under chaos: every `try_*` entry point and
//! `CheckedExecutor::checked_*` call either returns the correct result
//! or a typed error — it never hangs and never lets a panic cross the
//! API boundary.

use std::cell::Cell;
// xtask-allow: atomics-confinement cross-thread call counter local to the chaos harness, never swapped under loom
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use scan_core::simulate::PrimitiveScans;

use crate::plan::SplitMix64;

/// What the chaos schedule does to one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Run the call untouched.
    None,
    /// Sleep for the given duration before running the call.
    Delay(Duration),
    /// Panic instead of running the call.
    Panic,
    /// Run the call but corrupt its result.
    Lie,
    /// Kill the executing shard mid-job (delivered by `scan-shard`'s
    /// worker loop as an injected panic inside the shard thread, so
    /// the supervisor's panic containment and range re-execution are
    /// what get exercised).
    ShardKill,
    /// Corrupt the carry a shard reports upward (the per-shard total
    /// feeding the exclusive tree combine), so the O(n) verify and the
    /// breaker quarantine paths are what get exercised.
    CarryCorrupt,
}

/// A seeded, deterministic schedule of chaos events.
///
/// Each `*_every` period is independent; `0` disables that event kind.
/// When several kinds land on the same call the precedence is
/// panic > lie > delay. Call indices are 1-based, so the first
/// `every - 1` calls of each kind run clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the value-corruption stream (which element lies, and
    /// by how much).
    pub seed: u64,
    /// Inject a delay every this many calls (0 = never).
    pub delay_every: u64,
    /// Length of each injected delay, in microseconds.
    pub delay_us: u64,
    /// Panic every this many calls (0 = never).
    pub panic_every: u64,
    /// Corrupt the result every this many calls (0 = never).
    pub lie_every: u64,
    /// Kill the executing shard every this many *shard jobs*
    /// (0 = never). Only consulted by [`ChaosPlan::shard_event_for`].
    pub shard_kill_every: u64,
    /// Delay a shard job every this many shard jobs (0 = never); the
    /// delay length reuses `delay_us`. Only consulted by
    /// [`ChaosPlan::shard_event_for`].
    pub shard_delay_every: u64,
    /// Corrupt a shard's reported carry every this many shard jobs
    /// (0 = never). Only consulted by [`ChaosPlan::shard_event_for`].
    pub carry_corrupt_every: u64,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            delay_every: 0,
            delay_us: 0,
            panic_every: 0,
            lie_every: 0,
            shard_kill_every: 0,
            shard_delay_every: 0,
            carry_corrupt_every: 0,
        }
    }

    /// The scheduled event for 1-based call number `call`.
    pub fn event_for(&self, call: u64) -> ChaosEvent {
        let due = |every: u64| every != 0 && call.is_multiple_of(every);
        if due(self.panic_every) {
            ChaosEvent::Panic
        } else if due(self.lie_every) {
            ChaosEvent::Lie
        } else if due(self.delay_every) {
            ChaosEvent::Delay(Duration::from_micros(self.delay_us))
        } else {
            ChaosEvent::None
        }
    }

    /// The scheduled event for 1-based shard-job number `call`.
    ///
    /// Shard jobs count on their own clock, separate from scan calls,
    /// so a plan can torment a `scan-shard` executor without touching
    /// the backends underneath it. Precedence when several kinds land
    /// on the same job: shard-kill > carry-corrupt > delay. The delay
    /// length reuses `delay_us`.
    pub fn shard_event_for(&self, call: u64) -> ChaosEvent {
        let due = |every: u64| every != 0 && call.is_multiple_of(every);
        if due(self.shard_kill_every) {
            ChaosEvent::ShardKill
        } else if due(self.carry_corrupt_every) {
            ChaosEvent::CarryCorrupt
        } else if due(self.shard_delay_every) {
            ChaosEvent::Delay(Duration::from_micros(self.delay_us))
        } else {
            ChaosEvent::None
        }
    }
}

/// A `PrimitiveScans` wrapper that subjects every scan call to a
/// [`ChaosPlan`].
///
/// Lies corrupt exactly one seed-chosen output element by a nonzero
/// seed-chosen amount, so the exclusive-scan verifier is guaranteed to
/// reject the output. Panics unwind with a `"chaos:"` payload; pair
/// with a [`CheckedExecutor`](crate::CheckedExecutor), which contains
/// them.
#[derive(Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    plan: ChaosPlan,
    calls: Cell<u64>,
}

impl<B> ChaosBackend<B> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: B, plan: ChaosPlan) -> Self {
        ChaosBackend {
            inner,
            plan,
            calls: Cell::new(0),
        }
    }

    /// Scan calls made so far (clean and chaotic).
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: PrimitiveScans> ChaosBackend<B> {
    fn run(&self, max: bool, a: &[u64]) -> Vec<u64> {
        let call = self.calls.get() + 1;
        self.calls.set(call);
        match self.plan.event_for(call) {
            ChaosEvent::Panic => panic!("chaos: injected panic at call {call}"),
            ChaosEvent::Delay(d) => std::thread::sleep(d),
            // Shard events never fire from `event_for`; they are
            // scheduled by `shard_event_for` and delivered by the
            // shard executor, not per-backend wrappers.
            ChaosEvent::None
            | ChaosEvent::Lie
            | ChaosEvent::ShardKill
            | ChaosEvent::CarryCorrupt => {}
        }
        let mut out = if max {
            self.inner.max_scan(a)
        } else {
            self.inner.plus_scan(a)
        };
        if self.plan.event_for(call) == ChaosEvent::Lie && !out.is_empty() {
            let mut rng = SplitMix64(self.plan.seed ^ call.wrapping_mul(0x9E3779B97F4A7C15));
            let pos = rng.below(out.len() as u64) as usize;
            out[pos] ^= 1 + rng.below(u64::MAX - 1);
        }
        out
    }
}

impl<B: PrimitiveScans> PrimitiveScans for ChaosBackend<B> {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(false, a)
    }

    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(true, a)
    }
}

/// Wrap a binary scan operator so every application is counted against
/// `plan` (shared across all worker threads via one atomic counter) and
/// the scheduled delays and panics fire mid-scan.
///
/// Lie events are deliberately ignored here: an operator that returns
/// wrong values produces a *well-formed but wrong* scan, which is the
/// backend layer's failure mode, not the kernel layer's. Delays
/// exercise deadline checkpoints; panics exercise worker containment.
pub fn chaos_op<T, F>(plan: ChaosPlan, f: F) -> impl Fn(T, T) -> T + Sync
where
    F: Fn(T, T) -> T + Sync,
{
    // xtask-allow: atomics-confinement fault-injection probe shared across workers; deliberately outside the audited sync modules
    let calls = AtomicU64::new(0);
    move |x, y| {
        // xtask-allow: atomics-confinement relaxed count of operator applications drives the injection schedule only
        let call = calls.fetch_add(1, Ordering::Relaxed) + 1;
        match plan.event_for(call) {
            ChaosEvent::Panic => panic!("chaos: injected operator panic at application {call}"),
            ChaosEvent::Delay(d) => std::thread::sleep(d),
            ChaosEvent::None
            | ChaosEvent::Lie
            | ChaosEvent::ShardKill
            | ChaosEvent::CarryCorrupt => {}
        }
        f(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::simulate::SoftwareScans;
    use scan_core::Sum;

    #[test]
    fn schedule_is_deterministic_with_panic_precedence() {
        let p = ChaosPlan {
            delay_every: 2,
            delay_us: 5,
            panic_every: 6,
            lie_every: 3,
            ..ChaosPlan::quiet(1)
        };
        let events: Vec<ChaosEvent> = (1..=6).map(|c| p.event_for(c)).collect();
        assert_eq!(
            events,
            vec![
                ChaosEvent::None,
                ChaosEvent::Delay(Duration::from_micros(5)),
                ChaosEvent::Lie,
                ChaosEvent::Delay(Duration::from_micros(5)),
                ChaosEvent::None,
                ChaosEvent::Panic, // beats both lie (6 % 3) and delay (6 % 2)
            ]
        );
        assert_eq!(p.event_for(12), ChaosEvent::Panic);
        let quiet = ChaosPlan::quiet(9);
        assert!((1..100).all(|c| quiet.event_for(c) == ChaosEvent::None));
    }

    #[test]
    fn shard_schedule_is_deterministic_with_kill_precedence() {
        let p = ChaosPlan {
            delay_us: 9,
            shard_kill_every: 6,
            shard_delay_every: 2,
            carry_corrupt_every: 3,
            ..ChaosPlan::quiet(1)
        };
        let events: Vec<ChaosEvent> = (1..=6).map(|c| p.shard_event_for(c)).collect();
        assert_eq!(
            events,
            vec![
                ChaosEvent::None,
                ChaosEvent::Delay(Duration::from_micros(9)),
                ChaosEvent::CarryCorrupt,
                ChaosEvent::Delay(Duration::from_micros(9)),
                ChaosEvent::None,
                ChaosEvent::ShardKill, // beats corrupt (6 % 3) and delay (6 % 2)
            ]
        );
        // The shard clock is independent of the scan-call clock.
        assert!((1..100).all(|c| p.event_for(c) == ChaosEvent::None));
        let quiet = ChaosPlan::quiet(9);
        assert!((1..100).all(|c| quiet.shard_event_for(c) == ChaosEvent::None));
    }

    #[test]
    fn lies_are_always_detectable_and_reproducible() {
        let a: Vec<u64> = (0..32).map(|i| i * 7).collect();
        let good = scan_core::scan::<Sum, _>(&a);
        let plan = ChaosPlan {
            lie_every: 2,
            ..ChaosPlan::quiet(42)
        };
        let run = || {
            let b = ChaosBackend::new(SoftwareScans, plan);
            (b.plus_scan(&a), b.plus_scan(&a), b.plus_scan(&a))
        };
        let (c1, c2, c3) = run();
        assert_eq!(c1, good, "call 1 is clean");
        assert_ne!(c2, good, "call 2 lies");
        assert_eq!(c3, good, "call 3 is clean");
        assert_eq!(run().1, c2, "same plan, same lie");
        assert!(
            crate::verify::verify_scan::<Sum, u64>(&a, &c2).is_err(),
            "a chaos lie must never verify"
        );
    }

    #[test]
    fn panics_fire_on_schedule() {
        let plan = ChaosPlan {
            panic_every: 2,
            ..ChaosPlan::quiet(0)
        };
        let b = ChaosBackend::new(SoftwareScans, plan);
        let a = [1u64, 2, 3];
        assert_eq!(b.plus_scan(&a), scan_core::scan::<Sum, _>(&a));
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.plus_scan(&a)));
        assert!(got.is_err(), "call 2 must panic");
        assert_eq!(b.calls(), 2);
    }

    #[test]
    fn chaos_op_counts_across_applications() {
        let plan = ChaosPlan {
            panic_every: 5,
            ..ChaosPlan::quiet(0)
        };
        let op = chaos_op(plan, |x: u64, y: u64| x + y);
        for _ in 0..4 {
            op(1, 1);
        }
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(1, 1)));
        assert!(got.is_err(), "5th application must panic");
        // Lie events are a no-op for operators.
        let lying = chaos_op(
            ChaosPlan {
                lie_every: 1,
                ..ChaosPlan::quiet(0)
            },
            |x: u64, y: u64| x + y,
        );
        assert_eq!(lying(2, 3), 5);
    }

    #[test]
    fn chaos_backend_under_checked_executor_always_serves_truth() {
        let a: Vec<u64> = (0..48).map(|i| (i * 5) % 31).collect();
        let good = scan_core::scan::<Sum, _>(&a);
        let plan = ChaosPlan {
            delay_every: 7,
            delay_us: 10,
            panic_every: 5,
            lie_every: 3,
            ..ChaosPlan::quiet(7)
        };
        let ex = crate::CheckedExecutor::new(Box::new(ChaosBackend::new(SoftwareScans, plan)))
            .with_fallback(Box::new(SoftwareScans));
        for _ in 0..40 {
            assert_eq!(ex.plus_scan(&a), good);
        }
        let h = ex.backend_health(0);
        assert!(h.panics > 0, "schedule must have injected panics");
        assert!(ex.stats().detections > 0, "schedule must have injected lies");
    }
}
