//! O(n) self-checking of scan outputs.
//!
//! An exclusive scan is uniquely determined by a local recurrence:
//! `out[0]` is the operator identity and `out[i] = out[i-1] ⊕ a[i-1]`,
//! restarting at every segment head. Checking the recurrence costs one
//! operator application per element — a single unsegmented vector pass,
//! asymptotically free next to the scan's own work on a sequential
//! host and a constant number of program steps on the paper's machine.
//!
//! The check is **complete**: by induction on `i`, an output passes if
//! and only if it equals the reference scan. A verified-then-accepted
//! scan can therefore never be silently corrupted — any single (or
//! multi) bit upset that changes the output is detected.

use scan_core::{ScanElem, ScanOp, Segments};

use crate::error::{CorruptionKind, FaultError};

/// Verify an unsegmented exclusive scan output in one O(n) pass.
pub fn verify_scan<O: ScanOp<T>, T: ScanElem>(a: &[T], out: &[T]) -> crate::Result<()> {
    verify_with::<O, T>(a, out, |_| false)
}

/// Verify an unsegmented **backward** exclusive scan output.
pub fn verify_scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T], out: &[T]) -> crate::Result<()> {
    verify_backward_with::<O, T>(a, out, |_| false)
}

/// Verify a segmented exclusive scan output: the recurrence restarts
/// (with the identity) at every segment head.
pub fn verify_seg_scan<O: ScanOp<T>, T: ScanElem>(
    a: &[T],
    segs: &Segments,
    out: &[T],
) -> crate::Result<()> {
    if segs.len() != a.len() {
        return Err(scan_core::Error::LengthMismatch {
            expected: a.len(),
            actual: segs.len(),
        }
        .into());
    }
    verify_with::<O, T>(a, out, |i| segs.is_head(i))
}

/// Verify a segmented **backward** exclusive scan output: the
/// recurrence restarts at every segment *end*.
pub fn verify_seg_scan_backward<O: ScanOp<T>, T: ScanElem>(
    a: &[T],
    segs: &Segments,
    out: &[T],
) -> crate::Result<()> {
    if segs.len() != a.len() {
        return Err(scan_core::Error::LengthMismatch {
            expected: a.len(),
            actual: segs.len(),
        }
        .into());
    }
    let n = a.len();
    verify_backward_with::<O, T>(a, out, |i| i + 1 == n || segs.is_head(i + 1))
}

fn verify_with<O: ScanOp<T>, T: ScanElem>(
    a: &[T],
    out: &[T],
    is_head: impl Fn(usize) -> bool,
) -> crate::Result<()> {
    if out.len() != a.len() {
        return Err(FaultError::Corrupted {
            index: out.len().min(a.len()),
            check: CorruptionKind::Length,
        });
    }
    for i in 0..a.len() {
        if i == 0 || is_head(i) {
            if out[i] != O::identity() {
                return Err(FaultError::Corrupted {
                    index: i,
                    check: CorruptionKind::IdentityAtHead,
                });
            }
        } else if out[i] != O::combine(out[i - 1], a[i - 1]) {
            return Err(FaultError::Corrupted {
                index: i,
                check: CorruptionKind::Recurrence,
            });
        }
    }
    Ok(())
}

fn verify_backward_with<O: ScanOp<T>, T: ScanElem>(
    a: &[T],
    out: &[T],
    is_end: impl Fn(usize) -> bool,
) -> crate::Result<()> {
    if out.len() != a.len() {
        return Err(FaultError::Corrupted {
            index: out.len().min(a.len()),
            check: CorruptionKind::Length,
        });
    }
    let n = a.len();
    for i in (0..n).rev() {
        if i + 1 == n || is_end(i) {
            if out[i] != O::identity() {
                return Err(FaultError::Corrupted {
                    index: i,
                    check: CorruptionKind::IdentityAtHead,
                });
            }
        } else if out[i] != O::combine(a[i + 1], out[i + 1]) {
            return Err(FaultError::Corrupted {
                index: i,
                check: CorruptionKind::Recurrence,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::{Max, Min, Or, Sum};

    #[test]
    fn accepts_correct_forward_scans() {
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
        verify_scan::<Sum, _>(&a, &scan_core::scan::<Sum, _>(&a)).unwrap();
        verify_scan::<Max, _>(&a, &scan_core::scan::<Max, _>(&a)).unwrap();
        verify_scan::<Min, _>(&a, &scan_core::scan::<Min, _>(&a)).unwrap();
        let b = [true, false, true, false];
        verify_scan::<Or, _>(&b, &scan_core::scan::<Or, _>(&b)).unwrap();
        verify_scan::<Sum, u64>(&[], &[]).unwrap();
    }

    #[test]
    fn accepts_correct_backward_and_segmented_scans() {
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let segs = Segments::from_lengths(&[3, 1, 4]);
        verify_scan_backward::<Sum, _>(&a, &scan_core::scan_backward::<Sum, _>(&a)).unwrap();
        verify_seg_scan::<Sum, _>(&a, &segs, &scan_core::seg_scan::<Sum, _>(&a, &segs)).unwrap();
        verify_seg_scan::<Max, _>(&a, &segs, &scan_core::seg_scan::<Max, _>(&a, &segs)).unwrap();
        verify_seg_scan_backward::<Sum, _>(
            &a,
            &segs,
            &scan_core::seg_scan_backward::<Sum, _>(&a, &segs),
        )
        .unwrap();
    }

    #[test]
    fn every_single_position_corruption_is_detected() {
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let segs = Segments::from_lengths(&[3, 5]);
        let good = scan_core::seg_scan::<Sum, _>(&a, &segs);
        for i in 0..a.len() {
            for flip in [1u64, 1 << 17, 1 << 63] {
                let mut bad = good.clone();
                bad[i] ^= flip;
                let err = verify_seg_scan::<Sum, _>(&a, &segs, &bad).unwrap_err();
                assert!(
                    matches!(err, FaultError::Corrupted { .. }),
                    "i={i} flip={flip:#x}"
                );
            }
        }
    }

    #[test]
    fn completeness_on_random_outputs() {
        // Any output that differs from the reference is rejected; the
        // reference itself is accepted (invariant <=> equality).
        let mut x = 3u64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 20
        };
        for n in [1usize, 2, 5, 16] {
            let a: Vec<u64> = (0..n).map(|_| rng() & 0xFF).collect();
            let good = scan_core::scan::<Sum, _>(&a);
            for _ in 0..50 {
                let cand: Vec<u64> = (0..n).map(|_| rng() & 0xFF).collect();
                assert_eq!(
                    verify_scan::<Sum, _>(&a, &cand).is_ok(),
                    cand == good,
                    "n={n} cand={cand:?}"
                );
            }
        }
    }

    #[test]
    fn length_and_flag_mismatches_are_typed() {
        let a = [1u64, 2, 3];
        let err = verify_scan::<Sum, _>(&a, &[0, 1]).unwrap_err();
        assert!(matches!(
            err,
            FaultError::Corrupted {
                check: CorruptionKind::Length,
                ..
            }
        ));
        let segs = Segments::from_lengths(&[2]);
        let err = verify_seg_scan::<Sum, _>(&a, &segs, &[0, 0, 0]).unwrap_err();
        assert_eq!(
            err,
            FaultError::Core(scan_core::Error::LengthMismatch {
                expected: 3,
                actual: 2
            })
        );
    }
}
