//! The unified error taxonomy of the fault layer, extending
//! [`scan_core::Error`] with verification outcomes.

use core::fmt;

/// Errors reported by the self-checking execution layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A precondition failure surfaced by the checked `try_*` layer
    /// (length mismatch, duplicate permute index, width overflow, …).
    Core(scan_core::Error),
    /// The scan postcondition verifier rejected an output: position
    /// `index` does not satisfy the exclusive-scan invariant.
    Corrupted {
        /// First output position violating the invariant.
        index: usize,
        /// Which invariant check failed.
        check: CorruptionKind,
    },
    /// Every backend in the fallback chain kept producing outputs the
    /// verifier rejected.
    RetriesExhausted {
        /// Total verification attempts made across the chain.
        attempts: u32,
    },
    /// Execution was abandoned by the resilience layer (deadline
    /// expiry, cancellation, or worker loss) before a verified output
    /// existed.
    Exec(scan_core::ExecError),
}

/// Which clause of the exclusive-scan invariant a corrupted output
/// violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// A segment head did not hold the operator identity.
    IdentityAtHead,
    /// An interior element was not `out[i-1] ⊕ a[i-1]`.
    Recurrence,
    /// Output length differed from input length.
    Length,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Core(e) => write!(f, "vector operation failed: {e}"),
            FaultError::Corrupted { index, check } => {
                let clause = match check {
                    CorruptionKind::IdentityAtHead => "segment head is not the identity",
                    CorruptionKind::Recurrence => "does not extend its predecessor",
                    CorruptionKind::Length => "output length differs from input",
                };
                write!(f, "scan output corrupted at position {index}: {clause}")
            }
            FaultError::RetriesExhausted { attempts } => {
                write!(
                    f,
                    "no backend produced a verifiable scan in {attempts} attempts"
                )
            }
            FaultError::Exec(e) => write!(f, "execution abandoned: {e}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Core(e) => Some(e),
            FaultError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scan_core::Error> for FaultError {
    fn from(e: scan_core::Error) -> Self {
        FaultError::Core(e)
    }
}

impl From<scan_core::ExecError> for FaultError {
    fn from(e: scan_core::ExecError) -> Self {
        FaultError::Exec(e)
    }
}

/// Result alias using [`FaultError`].
pub type Result<T> = core::result::Result<T, FaultError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: FaultError = scan_core::Error::EmptyInput { op: "copy" }.into();
        assert_eq!(e.to_string(), "vector operation failed: copy of an empty vector");
        assert!(std::error::Error::source(&e).is_some());

        let e = FaultError::Corrupted {
            index: 3,
            check: CorruptionKind::Recurrence,
        };
        assert_eq!(
            e.to_string(),
            "scan output corrupted at position 3: does not extend its predecessor"
        );
        assert!(std::error::Error::source(&e).is_none());

        let e = FaultError::RetriesExhausted { attempts: 9 };
        assert!(e.to_string().contains("9 attempts"));

        let e: FaultError = scan_core::ExecError::DeadlineExceeded.into();
        assert_eq!(e.to_string(), "execution abandoned: deadline exceeded");
        assert!(std::error::Error::source(&e).is_some());
    }
}
