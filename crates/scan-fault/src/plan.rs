//! Deterministic, seedable fault plans.
//!
//! A [`FaultPlan`] decides — purely as a function of its seed and the
//! running scan index — which bits of the circuit flip on which clock
//! cycle. Two runs with the same seed inject exactly the same faults,
//! so every campaign is reproducible from one `u64`.
//!
//! The module also provides generators of *adversarial inputs* for the
//! checked ops layer: duplicate permute indices, mismatched lengths and
//! width overflows, the precondition failures that must surface as
//! typed errors rather than panics.

use scan_circuit::{CircuitFault, FaultSite};

/// SplitMix64 — the tiny, full-period seed scrambler. Deterministic
/// and state-free per call: the `n`-th value of a stream is a pure
/// function of `seed + n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Advance the state and return the next 64-bit value.
    // Deliberately named like `Iterator::next`; the generator is
    // infinite, so the iterator protocol's `Option` would only add noise.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// A deterministic schedule of transient circuit faults.
///
/// `faults_for(i, …)` yields the flips for the `i`-th scan the backend
/// executes: every `every`-th scan receives `flips` single-bit upsets
/// at seed-derived sites and cycles, the rest run clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    every: u64,
    flips: usize,
}

impl FaultPlan {
    /// A plan that faults every scan with one bit flip.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            every: 1,
            flips: 1,
        }
    }

    /// Fault only every `every`-th scan (1 = every scan; 0 is treated
    /// as 1).
    pub fn every(mut self, every: u64) -> Self {
        self.every = every.max(1);
        self
    }

    /// Inject `flips` bit flips into each faulted scan.
    pub fn flips(mut self, flips: usize) -> Self {
        self.flips = flips;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults to inject into scan number `scan_index`, drawn from
    /// the circuit's fault universe `sites` over a run of
    /// `total_cycles` clocks. Empty when this scan is scheduled clean
    /// or the circuit has no fault sites.
    pub fn faults_for(
        &self,
        scan_index: u64,
        sites: &[FaultSite],
        total_cycles: u64,
    ) -> Vec<CircuitFault> {
        if !scan_index.is_multiple_of(self.every) || sites.is_empty() || total_cycles == 0 {
            return Vec::new();
        }
        // Decorrelate the per-scan stream from the raw seed so plans
        // with nearby seeds do not share fault sequences.
        let mut rng = SplitMix64(self.seed ^ scan_index.wrapping_mul(0xA24BAED4963EE407));
        (0..self.flips)
            .map(|_| CircuitFault {
                cycle: rng.below(total_cycles),
                site: sites[rng.below(sites.len() as u64) as usize],
            })
            .collect()
    }
}

/// Adversarial inputs for the checked ops layer: each generator
/// produces an input that violates one documented precondition.
pub mod adversarial {
    use super::SplitMix64;

    /// A permutation of `0..n` with one index duplicated (and therefore
    /// one missing) — must be rejected as `DuplicateIndex`.
    pub fn duplicate_permute_indices(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        // Fisher–Yates with the seeded stream.
        for i in (1..n).rev() {
            idx.swap(i, rng.below(i as u64 + 1) as usize);
        }
        if n >= 2 {
            let pos = rng.below(n as u64) as usize;
            let dup = idx[(pos + 1) % n];
            idx[pos] = dup;
        }
        idx
    }

    /// An index vector with one entry pointing past the end — must be
    /// rejected as `IndexOutOfBounds`.
    pub fn out_of_bounds_indices(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64(seed);
        let mut idx: Vec<usize> = (0..n)
            .map(|_| rng.below(n.max(1) as u64) as usize)
            .collect();
        if n > 0 {
            let pos = rng.below(n as u64) as usize;
            idx[pos] = n + rng.below(16) as usize;
        }
        idx
    }

    /// A flag vector whose length disagrees with `n` by at least one —
    /// must be rejected as `LengthMismatch`.
    pub fn mismatched_flags(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = SplitMix64(seed);
        let m = if n == 0 || rng.next() & 1 == 0 {
            n + 1 + rng.below(3) as usize
        } else {
            n - 1
        };
        (0..m).map(|_| rng.next() & 1 == 1).collect()
    }

    /// Values of which at least one needs more than `m_bits` bits
    /// (`m_bits < 64`) — must be rejected as `WidthOverflow` by
    /// width-checked layers.
    pub fn width_overflow_values(n: usize, m_bits: u32, seed: u64) -> Vec<u64> {
        assert!(m_bits < 64, "64-bit fields cannot overflow");
        let mut rng = SplitMix64(seed);
        let mask = (1u64 << m_bits) - 1;
        let mut v: Vec<u64> = (0..n.max(1)).map(|_| rng.next() & mask).collect();
        let pos = rng.below(v.len() as u64) as usize;
        v[pos] = mask + 1 + rng.below(7);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_circuit::TreeScanCircuit;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let c = TreeScanCircuit::new(16);
        let sites = c.fault_sites();
        let p = FaultPlan::new(42);
        let a = p.faults_for(7, &sites, 20);
        let b = p.faults_for(7, &sites, 20);
        assert_eq!(a, b, "same seed, same scan, same faults");
        assert_eq!(a.len(), 1);
        let other = FaultPlan::new(43).faults_for(7, &sites, 20);
        assert_ne!(a, other, "different seed diverges");
        assert!(a[0].cycle < 20);
        assert!(sites.contains(&a[0].site));
    }

    #[test]
    fn every_and_flips_shape_the_schedule() {
        let c = TreeScanCircuit::new(8);
        let sites = c.fault_sites();
        let p = FaultPlan::new(1).every(3).flips(2);
        assert_eq!(p.faults_for(0, &sites, 16).len(), 2);
        assert!(p.faults_for(1, &sites, 16).is_empty());
        assert!(p.faults_for(2, &sites, 16).is_empty());
        assert_eq!(p.faults_for(3, &sites, 16).len(), 2);
        assert!(p.faults_for(0, &[], 16).is_empty());
        assert!(p.faults_for(0, &sites, 0).is_empty());
    }

    #[test]
    fn adversarial_generators_violate_their_preconditions() {
        for seed in 0..32u64 {
            let dup = adversarial::duplicate_permute_indices(8, seed);
            assert_eq!(dup.len(), 8);
            let mut sorted = dup.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert!(sorted.len() < 8, "seed={seed}: no duplicate in {dup:?}");

            let oob = adversarial::out_of_bounds_indices(8, seed);
            assert!(oob.iter().any(|&i| i >= 8), "seed={seed}");

            let flags = adversarial::mismatched_flags(8, seed);
            assert_ne!(flags.len(), 8, "seed={seed}");

            let wide = adversarial::width_overflow_values(8, 8, seed);
            assert!(wide.iter().any(|&v| v > 0xFF), "seed={seed}");
        }
    }
}
