//! The per-backend circuit breaker, extracted from the checked
//! executor so other supervisors (notably `scan-shard`'s per-shard
//! health tracking) can reuse the identical state machine.
//!
//! A [`Breaker`] tracks one backend on a caller-supplied **logical
//! clock** (the executor's scan counter, a sharded executor's run
//! counter, ...). The caller asks [`Breaker::gate`] how to treat the
//! backend this tick, reports the outcome via [`Breaker::success`] /
//! [`Breaker::failure`], and the breaker keeps the
//! threshold/quarantine/probe bookkeeping:
//!
//! - `Closed` backends are attempted with the caller's full retry
//!   budget; `failure_threshold` consecutive failures open the breaker.
//! - `Open` backends are skipped until the clock reaches `until`, then
//!   granted exactly one probation probe — success re-closes the
//!   breaker, failure re-opens it with exponentially doubled (capped)
//!   backoff.
//! - Each quarantine end carries a deterministic seeded jitter draw
//!   (via the shared [`scan_core::backoff`] arithmetic) so a fleet of
//!   breakers opened by one incident does not re-probe in lockstep.

use scan_core::backoff;

/// Tuning knobs for the per-backend circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed attempts (rejected or panicked) that open the
    /// breaker on a backend.
    pub failure_threshold: u32,
    /// Quarantine length, in ticks of the caller's logical clock,
    /// applied the first time a backend opens.
    pub base_quarantine: u64,
    /// Backoff ceiling: each failed probation probe doubles the
    /// quarantine up to this many ticks.
    pub max_quarantine: u64,
    /// Up to this many extra ticks of seeded jitter are added to each
    /// quarantine, so a fleet of breakers opened by one incident does
    /// not re-probe in lockstep. `0` disables jitter (exact backoff).
    pub jitter: u64,
    /// Seed for the jitter draw. The draw is a pure function of
    /// `(seed, backend index, quarantine count)` — replaying the same
    /// failure sequence reproduces the same quarantine schedule.
    pub jitter_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            base_quarantine: 8,
            max_quarantine: 1024,
            jitter: 3,
            jitter_seed: 0x5eed_b10c_ba5e_0ff5,
        }
    }
}

/// Breaker position for one backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the backend is attempted normally.
    Closed,
    /// Quarantined: skipped until the logical clock reaches `until`,
    /// then given one probation probe.
    Open {
        /// Clock value at which the backend becomes probeable.
        until: u64,
        /// Current quarantine length; doubles (capped) per failed
        /// probe.
        backoff: u64,
    },
}

/// How the breaker admits a backend for the current tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Closed breaker: full retry budget.
    Full,
    /// Quarantine elapsed: exactly one probe attempt.
    Probe,
    /// Still quarantined: not attempted at all.
    Skip,
}

/// One backend's breaker state machine plus its lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    skipped: u64,
    probes: u64,
    quarantines: u64,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker::new()
    }
}

impl Breaker {
    /// A fresh, closed breaker.
    pub fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            skipped: 0,
            probes: 0,
            quarantines: 0,
        }
    }

    /// How to treat the backend at logical time `clock`. Counts the
    /// skip or the probe as a side effect, so call it exactly once per
    /// tick the backend is considered.
    pub fn gate(&mut self, clock: u64) -> Gate {
        match self.state {
            BreakerState::Closed => Gate::Full,
            BreakerState::Open { until, .. } if clock < until => {
                self.skipped += 1;
                Gate::Skip
            }
            BreakerState::Open { .. } => {
                self.probes += 1;
                Gate::Probe
            }
        }
    }

    /// Record a verified success: the breaker closes and the failure
    /// streak resets (this is also how a probe re-admits a backend).
    pub fn success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record one failed attempt at logical time `clock`. Opens the
    /// breaker when the attempt was a probation probe or the streak
    /// reached `cfg.failure_threshold`; returns `true` iff it opened
    /// (the caller should stop retrying a quarantined backend).
    /// `stream` is the backend's jitter stream (typically its index).
    pub fn failure(&mut self, cfg: &BreakerConfig, stream: u64, clock: u64, probe: bool) -> bool {
        self.consecutive_failures += 1;
        if probe || self.consecutive_failures >= cfg.failure_threshold {
            self.open(cfg, stream, clock);
            true
        } else {
            false
        }
    }

    /// Open (or re-open) the breaker at logical time `clock`, doubling
    /// the backoff (capped) if it was already open. The quarantine end
    /// gets a deterministic seeded jitter on top of the backoff so
    /// co-failing breakers spread their re-probes; the stored `backoff`
    /// stays exact, keeping the doubling schedule independent of the
    /// jitter draws.
    pub fn open(&mut self, cfg: &BreakerConfig, stream: u64, clock: u64) {
        let next_backoff = match self.state {
            BreakerState::Closed => cfg.base_quarantine.max(1),
            BreakerState::Open { backoff, .. } => {
                backoff::double_capped(backoff, cfg.max_quarantine)
            }
        };
        let jitter = backoff::jitter(
            backoff::stream_key(cfg.jitter_seed, stream, self.quarantines),
            cfg.jitter.saturating_add(1),
        );
        self.state = BreakerState::Open {
            until: clock.saturating_add(next_backoff).saturating_add(jitter),
            backoff: next_backoff,
        };
        self.quarantines += 1;
    }

    /// Breaker position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Failed attempts since the last verified success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Ticks during which this backend was skipped while quarantined.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Probation probes issued after a quarantine elapsed.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Times the breaker opened (including re-opens after a failed
    /// probe).
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SplitMix64;

    fn exact(threshold: u32) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            base_quarantine: 8,
            max_quarantine: 64,
            jitter: 0,
            jitter_seed: 0,
        }
    }

    #[test]
    fn closed_until_threshold_then_quarantine_then_probe() {
        let cfg = exact(3);
        let mut b = Breaker::new();
        // Two failures: still closed (streak below threshold).
        assert_eq!(b.gate(0), Gate::Full);
        assert!(!b.failure(&cfg, 0, 0, false));
        assert_eq!(b.gate(1), Gate::Full);
        assert!(!b.failure(&cfg, 0, 1, false));
        // Third failure at clock 2 opens: until = 2 + 8 = 10.
        assert_eq!(b.gate(2), Gate::Full);
        assert!(b.failure(&cfg, 0, 2, false));
        assert_eq!(b.state(), BreakerState::Open { until: 10, backoff: 8 });
        assert_eq!(b.quarantines(), 1);
        // Clocks 3..=9 skip.
        for clock in 3..10 {
            assert_eq!(b.gate(clock), Gate::Skip);
        }
        assert_eq!(b.skipped(), 7);
        // Clock 10 probes; a failed probe re-opens with doubled backoff.
        assert_eq!(b.gate(10), Gate::Probe);
        assert!(b.failure(&cfg, 0, 10, true));
        assert_eq!(b.state(), BreakerState::Open { until: 26, backoff: 16 });
        assert_eq!(b.probes(), 1);
        // Backoff caps at max_quarantine.
        for _ in 0..4 {
            b.open(&cfg, 0, 0);
        }
        let BreakerState::Open { backoff, .. } = b.state() else {
            panic!("must stay open");
        };
        assert_eq!(backoff, 64);
    }

    #[test]
    fn probe_success_recloses_and_resets_streak() {
        let cfg = exact(1);
        let mut b = Breaker::new();
        assert!(b.failure(&cfg, 0, 0, false));
        assert_eq!(b.gate(8), Gate::Probe);
        b.success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(b.gate(9), Gate::Full);
    }

    /// Exact-value pin: the jitter draw must reproduce the formula the
    /// executor carried inline before the extraction —
    /// `SplitMix64(seed + idx·GOLDEN + (quarantines << 1)).below(jitter + 1)`.
    #[test]
    fn jitter_draw_matches_the_legacy_splitmix_formula() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            base_quarantine: 8,
            max_quarantine: 64,
            jitter: 5,
            jitter_seed: 0xfeed_beef,
        };
        for stream in [0u64, 1, 3, 17] {
            let mut b = Breaker::new();
            for reopen in 0u64..6 {
                let clock = reopen * 100;
                b.open(&cfg, stream, clock);
                let legacy = SplitMix64(
                    cfg.jitter_seed
                        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add(reopen << 1),
                )
                .below(cfg.jitter.saturating_add(1));
                let expect_backoff = 8u64.saturating_mul(1 << reopen.min(3)).min(64);
                assert_eq!(
                    b.state(),
                    BreakerState::Open {
                        until: clock + expect_backoff + legacy,
                        backoff: expect_backoff,
                    },
                    "stream {stream}, reopen {reopen}"
                );
            }
        }
    }
}
