//! Self-checking scan execution: verify every primitive scan, retry a
//! bounded number of times, then walk a fallback chain under a
//! per-backend circuit breaker.
//!
//! The verifier (see [`crate::verify`]) is complete — an accepted
//! output *is* the reference scan — so anything built on a
//! [`CheckedExecutor`] (in particular `scan_pram::Ctx` with this as
//! its backend) computes exactly what it would compute on fault-free
//! hardware, no matter how corrupted the underlying circuit is. The
//! cost of that guarantee is one O(n) pass per scan plus re-execution
//! of the scans that fail it.
//!
//! Three resilience mechanisms ride on top of verify-and-retry:
//!
//! - **Circuit breaker** ([`BreakerConfig`]): each backend carries a
//!   consecutive-failure counter; at the threshold the backend is
//!   quarantined (state `Open`) and *skipped* for a number of scans
//!   measured on the executor's logical scan clock. When the
//!   quarantine elapses the next scan is a single **probation probe**
//!   — success re-admits the backend, failure re-opens it with
//!   exponentially doubled (capped) backoff. Each quarantine end is
//!   spread by deterministic seeded jitter so breakers opened by one
//!   incident do not re-probe in lockstep.
//! - **Panic containment**: every backend invocation runs under
//!   `catch_unwind`; a panicking backend counts as a failed attempt
//!   (and trips the breaker) instead of unwinding through the caller.
//! - **Deadline awareness**: each scan request begins with a
//!   [`scan_core::deadline::checkpoint`], so an expired or cancelled
//!   ambient [`scan_core::ScanDeadline`] surfaces as
//!   [`FaultError::Exec`] before any backend burns cycles.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};

use scan_core::simulate::PrimitiveScans;
use scan_core::{Max, Sum};

use crate::breaker::{Breaker, Gate};
use crate::error::FaultError;
use crate::verify::verify_scan;

// The breaker state machine lived in this module before `scan-shard`
// needed it too; keep the historical paths working.
pub use crate::breaker::{BreakerConfig, BreakerState};

/// Health snapshot of one backend in the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendHealth {
    /// Breaker position.
    pub state: BreakerState,
    /// Failed attempts since the last verified success.
    pub consecutive_failures: u32,
    /// Scans during which this backend was skipped while quarantined.
    pub skipped: u64,
    /// Probation probes issued after a quarantine elapsed.
    pub probes: u64,
    /// Times the breaker opened (including re-opens after a failed
    /// probe).
    pub quarantines: u64,
    /// Panics contained by `catch_unwind` around this backend.
    pub panics: u64,
}

#[derive(Debug, Clone, Copy)]
struct HealthInner {
    breaker: Breaker,
    panics: u64,
}

impl HealthInner {
    fn new() -> Self {
        HealthInner {
            breaker: Breaker::new(),
            panics: 0,
        }
    }
}

/// Counters describing what a [`CheckedExecutor`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckedStats {
    /// Scan requests served.
    pub scans: u64,
    /// Backend invocations (≥ `scans`; larger when retries happen).
    pub attempts: u64,
    /// Outputs the verifier rejected.
    pub detections: u64,
    /// Re-invocations of the same backend after a rejection.
    pub retries: u64,
    /// Times execution moved past a backend to the next in the chain.
    pub fallbacks: u64,
    /// Scans ultimately served by the sequential reference because the
    /// whole chain kept failing.
    pub rescues: u64,
}

/// A verifying, retrying, falling-back `PrimitiveScans` wrapper with a
/// per-backend circuit breaker.
///
/// Backends are tried in order; each healthy backend gets `1 + retries`
/// attempts (run under `catch_unwind`), each attempt's output is
/// verified in O(n). Backends that keep failing are quarantined and
/// skipped per [`BreakerConfig`], then re-probed after an
/// exponential backoff. If the whole chain fails, the
/// `PrimitiveScans` entry points serve the scan from the in-process
/// sequential reference (and count a rescue), so they *never* return a
/// corrupted scan; the `checked_*` variants instead surface
/// [`FaultError::RetriesExhausted`].
pub struct CheckedExecutor {
    chain: Vec<Box<dyn PrimitiveScans>>,
    retries: u32,
    breaker: BreakerConfig,
    health: RefCell<Vec<HealthInner>>,
    scans: Cell<u64>,
    attempts: Cell<u64>,
    detections: Cell<u64>,
    retried: Cell<u64>,
    fallbacks: Cell<u64>,
    rescues: Cell<u64>,
}

impl core::fmt::Debug for CheckedExecutor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CheckedExecutor")
            .field("chain_len", &self.chain.len())
            .field("retries", &self.retries)
            .field("breaker", &self.breaker)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CheckedExecutor {
    /// An executor whose first choice is `primary`; by default one
    /// retry per backend and no further fallbacks (the sequential
    /// reference always backstops the chain).
    pub fn new(primary: Box<dyn PrimitiveScans>) -> Self {
        CheckedExecutor {
            chain: vec![primary],
            retries: 1,
            breaker: BreakerConfig::default(),
            health: RefCell::new(vec![HealthInner::new()]),
            scans: Cell::new(0),
            attempts: Cell::new(0),
            detections: Cell::new(0),
            retried: Cell::new(0),
            fallbacks: Cell::new(0),
            rescues: Cell::new(0),
        }
    }

    /// Append a backend to the fallback chain (tried after everything
    /// already in the chain).
    pub fn with_fallback(mut self, backend: Box<dyn PrimitiveScans>) -> Self {
        self.chain.push(backend);
        self.health.borrow_mut().push(HealthInner::new());
        self
    }

    /// Retries per backend after a rejected output (default 1).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Replace the circuit-breaker tuning (see [`BreakerConfig`] for
    /// the defaults).
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Health snapshot of backend `i` in the chain.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn backend_health(&self, i: usize) -> BackendHealth {
        let h = self.health.borrow()[i];
        BackendHealth {
            state: h.breaker.state(),
            consecutive_failures: h.breaker.consecutive_failures(),
            skipped: h.breaker.skipped(),
            probes: h.breaker.probes(),
            quarantines: h.breaker.quarantines(),
            panics: h.panics,
        }
    }

    /// Snapshot of the executor's counters.
    pub fn stats(&self) -> CheckedStats {
        CheckedStats {
            scans: self.scans.get(),
            attempts: self.attempts.get(),
            detections: self.detections.get(),
            retries: self.retried.get(),
            fallbacks: self.fallbacks.get(),
            rescues: self.rescues.get(),
        }
    }

    fn run(&self, max: bool, a: &[u64]) -> crate::Result<Vec<u64>> {
        scan_core::deadline::checkpoint()?;
        let clock = self.scans.get();
        self.scans.set(clock + 1);
        let mut attempts_here = 0u32;
        for (b_idx, backend) in self.chain.iter().enumerate() {
            let gate = self.health.borrow_mut()[b_idx].breaker.gate(clock);
            if gate == Gate::Skip {
                continue;
            }
            if b_idx > 0 {
                self.fallbacks.set(self.fallbacks.get() + 1);
            }
            let tries = if gate == Gate::Probe {
                1
            } else {
                1 + self.retries
            };
            for attempt in 0..tries {
                attempts_here += 1;
                self.attempts.set(self.attempts.get() + 1);
                if attempt > 0 {
                    self.retried.set(self.retried.get() + 1);
                }
                // Panic containment: a backend that unwinds is a failed
                // attempt, not our caller's problem.
                let raw = catch_unwind(AssertUnwindSafe(|| {
                    if max {
                        backend.max_scan(a)
                    } else {
                        backend.plus_scan(a)
                    }
                }));
                let verified = match raw {
                    Ok(out) => {
                        let ok = if max {
                            verify_scan::<Max, u64>(a, &out)
                        } else {
                            verify_scan::<Sum, u64>(a, &out)
                        };
                        match ok {
                            Ok(()) => Some(out),
                            Err(_) => {
                                self.detections.set(self.detections.get() + 1);
                                None
                            }
                        }
                    }
                    Err(_) => {
                        self.health.borrow_mut()[b_idx].panics += 1;
                        None
                    }
                };
                match verified {
                    Some(out) => {
                        self.health.borrow_mut()[b_idx].breaker.success();
                        return Ok(out);
                    }
                    None => {
                        let opened = self.health.borrow_mut()[b_idx].breaker.failure(
                            &self.breaker,
                            b_idx as u64,
                            clock,
                            gate == Gate::Probe,
                        );
                        if opened {
                            break; // stop retrying a quarantined backend
                        }
                    }
                }
            }
        }
        Err(FaultError::RetriesExhausted {
            attempts: attempts_here,
        })
    }

    /// Verified `+-scan`: correct output or a typed error.
    pub fn checked_plus_scan(&self, a: &[u64]) -> crate::Result<Vec<u64>> {
        self.run(false, a)
    }

    /// Verified `max-scan`: correct output or a typed error.
    pub fn checked_max_scan(&self, a: &[u64]) -> crate::Result<Vec<u64>> {
        self.run(true, a)
    }

    fn rescue(&self, max: bool, a: &[u64]) -> Vec<u64> {
        self.rescues.set(self.rescues.get() + 1);
        if max {
            scan_core::scan::<Max, _>(a)
        } else {
            scan_core::scan::<Sum, _>(a)
        }
    }
}

impl PrimitiveScans for CheckedExecutor {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(false, a).unwrap_or_else(|_| self.rescue(false, a))
    }

    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(true, a).unwrap_or_else(|_| self.rescue(true, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FaultyCircuitBackend;
    use crate::plan::FaultPlan;
    use scan_core::simulate::SoftwareScans;

    /// A backend that is wrong every time.
    struct AlwaysWrong;
    impl PrimitiveScans for AlwaysWrong {
        fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
            vec![u64::MAX; a.len()]
        }
        fn max_scan(&self, a: &[u64]) -> Vec<u64> {
            vec![u64::MAX; a.len()]
        }
    }

    #[test]
    fn clean_backend_passes_straight_through() {
        let ex = CheckedExecutor::new(Box::new(SoftwareScans));
        let a: Vec<u64> = (0..40).map(|i| i * 3).collect();
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap(),
            scan_core::scan::<Sum, _>(&a)
        );
        assert_eq!(
            ex.checked_max_scan(&a).unwrap(),
            scan_core::scan::<Max, _>(&a)
        );
        let s = ex.stats();
        assert_eq!(s.scans, 2);
        assert_eq!(s.attempts, 2);
        assert_eq!(s.detections, 0);
        assert_eq!(s.rescues, 0);
    }

    #[test]
    fn always_wrong_primary_falls_back() {
        let ex = CheckedExecutor::new(Box::new(AlwaysWrong)).with_fallback(Box::new(SoftwareScans));
        let a: Vec<u64> = (0..20).collect();
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap(),
            scan_core::scan::<Sum, _>(&a)
        );
        let s = ex.stats();
        assert_eq!(s.detections, 2, "both primary attempts rejected");
        assert_eq!(s.retries, 1);
        assert_eq!(s.fallbacks, 1);
    }

    #[test]
    fn exhausted_chain_is_a_typed_error_but_trait_rescues() {
        let ex = CheckedExecutor::new(Box::new(AlwaysWrong)).with_retries(2);
        let a: Vec<u64> = (0..10).collect();
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap_err(),
            FaultError::RetriesExhausted { attempts: 3 }
        );
        // The PrimitiveScans view never returns garbage: it rescues.
        assert_eq!(ex.plus_scan(&a), scan_core::scan::<Sum, _>(&a));
        assert_eq!(ex.stats().rescues, 1);
    }

    #[test]
    fn faulty_circuit_is_tamed() {
        let a: Vec<u64> = (0..64).map(|i| (i * 13) % 127).collect();
        let faulty = FaultyCircuitBackend::new(64, FaultPlan::new(7));
        let ex = CheckedExecutor::new(Box::new(faulty)).with_retries(3);
        for _ in 0..30 {
            assert_eq!(ex.plus_scan(&a), scan_core::scan::<Sum, _>(&a));
            assert_eq!(ex.max_scan(&a), scan_core::scan::<Max, _>(&a));
        }
        let s = ex.stats();
        assert_eq!(s.scans, 60);
        assert!(s.detections > 0, "a plan faulting every scan must trip");
        // Retries plus breaker skips account for every scan: each one
        // was either attempted on the circuit or served while the
        // circuit sat in quarantine.
        let h = ex.backend_health(0);
        assert!(s.attempts + h.skipped > s.scans);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_skips() {
        let ex = CheckedExecutor::new(Box::new(AlwaysWrong))
            .with_fallback(Box::new(SoftwareScans))
            .with_retries(0)
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                base_quarantine: 8,
                max_quarantine: 64,
                jitter: 0, // exact-value assertions below
                jitter_seed: 0,
            });
        let a: Vec<u64> = (0..16).collect();
        let good = scan_core::scan::<Sum, _>(&a);
        // Scans at clock 0..=2 attempt the primary and fail; the third
        // failure opens the breaker (until = 2 + 8 = 10).
        for _ in 0..3 {
            assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        }
        let h = ex.backend_health(0);
        assert_eq!(h.quarantines, 1);
        assert_eq!(h.state, BreakerState::Open { until: 10, backoff: 8 });
        let attempts_at_open = ex.stats().attempts;
        // Clocks 3..=9: the primary is skipped, not attempted.
        for _ in 3..10 {
            assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        }
        let h = ex.backend_health(0);
        assert_eq!(h.skipped, 7, "quarantined backend must be skipped");
        // 7 scans each cost exactly one (fallback) attempt.
        assert_eq!(ex.stats().attempts, attempts_at_open + 7);
        // Clock 10: quarantine elapsed — one probe, which fails and
        // re-opens with doubled backoff.
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        let h = ex.backend_health(0);
        assert_eq!(h.probes, 1);
        assert_eq!(h.quarantines, 2);
        assert_eq!(h.state, BreakerState::Open { until: 26, backoff: 16 });
    }

    #[test]
    fn quarantine_jitter_is_deterministic_and_bounded() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            base_quarantine: 8,
            max_quarantine: 64,
            jitter: 5,
            jitter_seed: 0xfeed_beef,
        };
        let open_state = |cfg: BreakerConfig| {
            let ex = CheckedExecutor::new(Box::new(AlwaysWrong))
                .with_fallback(Box::new(SoftwareScans))
                .with_retries(0)
                .with_breaker(cfg);
            let a: Vec<u64> = (0..8).collect();
            // Clock 0: the only failure needed to open the breaker.
            ex.checked_plus_scan(&a).unwrap();
            ex.backend_health(0).state
        };
        // Deterministic: the same seed and failure history reproduce
        // the same quarantine schedule.
        assert_eq!(open_state(cfg), open_state(cfg));
        // Bounded: the stored backoff stays exact; only the end point
        // moves, by at most `jitter` scans.
        let BreakerState::Open { until, backoff } = open_state(cfg) else {
            panic!("breaker must be open after a failure at threshold 1");
        };
        assert_eq!(backoff, 8, "jitter must not distort the doubling base");
        assert!(
            (8..=8 + cfg.jitter).contains(&until),
            "until {until} outside the jitter envelope"
        );
    }

    #[test]
    fn jitter_schedule_replays_identically_across_executors() {
        let mk = || {
            CheckedExecutor::new(Box::new(AlwaysWrong))
                .with_fallback(Box::new(SoftwareScans))
                .with_retries(0)
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    base_quarantine: 2,
                    max_quarantine: 16,
                    jitter: 7,
                    jitter_seed: 42,
                })
        };
        let a: Vec<u64> = (0..8).collect();
        let run = |ex: &CheckedExecutor| {
            let mut schedule = Vec::new();
            for _ in 0..40 {
                ex.checked_plus_scan(&a).unwrap();
                schedule.push(ex.backend_health(0).state);
            }
            schedule
        };
        let (ex1, ex2) = (mk(), mk());
        assert_eq!(
            run(&ex1),
            run(&ex2),
            "same seed + same failures must replay the same schedule"
        );
        // The walk covered several re-openings, so the equality above
        // pinned multiple independent jitter draws.
        assert!(ex1.backend_health(0).quarantines >= 3);
    }

    /// Wrong for the first `bad_calls` invocations, correct afterwards.
    struct HealsAfter {
        bad_calls: u64,
        calls: std::cell::Cell<u64>,
    }
    impl PrimitiveScans for HealsAfter {
        fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
            let c = self.calls.get();
            self.calls.set(c + 1);
            if c < self.bad_calls {
                vec![u64::MAX; a.len()]
            } else {
                scan_core::scan::<Sum, _>(a)
            }
        }
        fn max_scan(&self, a: &[u64]) -> Vec<u64> {
            self.plus_scan(a)
        }
    }

    #[test]
    fn probe_readmits_a_healed_backend() {
        let ex = CheckedExecutor::new(Box::new(HealsAfter {
            bad_calls: 1,
            calls: std::cell::Cell::new(0),
        }))
        .with_fallback(Box::new(SoftwareScans))
        .with_retries(0)
        .with_breaker(BreakerConfig {
            failure_threshold: 1,
            base_quarantine: 2,
            max_quarantine: 8,
            jitter: 0, // exact-value assertions below
            jitter_seed: 0,
        });
        let a: Vec<u64> = (0..12).collect();
        let good = scan_core::scan::<Sum, _>(&a);
        // Clock 0: primary lies once, breaker opens (until = 2).
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        assert_eq!(
            ex.backend_health(0).state,
            BreakerState::Open { until: 2, backoff: 2 }
        );
        // Clock 1: skipped.
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        assert_eq!(ex.backend_health(0).skipped, 1);
        // Clock 2: probe — the backend has healed, so it is re-admitted.
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        let h = ex.backend_health(0);
        assert_eq!(h.probes, 1);
        assert_eq!(h.state, BreakerState::Closed);
        assert_eq!(h.consecutive_failures, 0);
        // Clock 3: served by the healthy primary again — no new
        // fallbacks.
        let fallbacks = ex.stats().fallbacks;
        assert_eq!(ex.checked_plus_scan(&a).unwrap(), good);
        assert_eq!(ex.stats().fallbacks, fallbacks);
    }

    /// A backend that panics on every call.
    struct AlwaysPanics;
    impl PrimitiveScans for AlwaysPanics {
        fn plus_scan(&self, _a: &[u64]) -> Vec<u64> {
            panic!("injected backend panic");
        }
        fn max_scan(&self, _a: &[u64]) -> Vec<u64> {
            panic!("injected backend panic");
        }
    }

    #[test]
    fn panicking_backend_is_contained_and_counted() {
        let ex = CheckedExecutor::new(Box::new(AlwaysPanics))
            .with_fallback(Box::new(SoftwareScans))
            .with_retries(1);
        let a: Vec<u64> = (0..20).collect();
        // No panic crosses this call; the fallback serves the scan.
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap(),
            scan_core::scan::<Sum, _>(&a)
        );
        let h = ex.backend_health(0);
        assert!(h.panics >= 1);
        assert_eq!(ex.stats().detections, 0, "a panic is not a detection");
    }

    #[test]
    fn expired_ambient_deadline_is_a_typed_error() {
        let ex = CheckedExecutor::new(Box::new(SoftwareScans));
        let d = scan_core::ScanDeadline::after(std::time::Duration::ZERO);
        let got = scan_core::deadline::with_deadline(&d, || ex.checked_plus_scan(&[1, 2, 3]));
        assert_eq!(
            got.unwrap_err(),
            FaultError::Exec(scan_core::ExecError::DeadlineExceeded)
        );
        assert_eq!(ex.stats().scans, 0, "abandoned before any attempt");
    }

    #[test]
    fn empty_input() {
        let ex = CheckedExecutor::new(Box::new(SoftwareScans));
        assert!(ex.checked_plus_scan(&[]).unwrap().is_empty());
    }
}
