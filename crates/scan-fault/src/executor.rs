//! Self-checking scan execution: verify every primitive scan, retry a
//! bounded number of times, then walk a fallback chain.
//!
//! The verifier (see [`crate::verify`]) is complete — an accepted
//! output *is* the reference scan — so anything built on a
//! [`CheckedExecutor`] (in particular `scan_pram::Ctx` with this as
//! its backend) computes exactly what it would compute on fault-free
//! hardware, no matter how corrupted the underlying circuit is. The
//! cost of that guarantee is one O(n) pass per scan plus re-execution
//! of the scans that fail it.

use std::cell::Cell;

use scan_core::simulate::PrimitiveScans;
use scan_core::{Max, Sum};

use crate::error::FaultError;
use crate::verify::verify_scan;

/// Counters describing what a [`CheckedExecutor`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckedStats {
    /// Scan requests served.
    pub scans: u64,
    /// Backend invocations (≥ `scans`; larger when retries happen).
    pub attempts: u64,
    /// Outputs the verifier rejected.
    pub detections: u64,
    /// Re-invocations of the same backend after a rejection.
    pub retries: u64,
    /// Times execution moved past a backend to the next in the chain.
    pub fallbacks: u64,
    /// Scans ultimately served by the sequential reference because the
    /// whole chain kept failing.
    pub rescues: u64,
}

/// A verifying, retrying, falling-back `PrimitiveScans` wrapper.
///
/// Backends are tried in order; each gets `1 + retries` attempts, each
/// attempt's output is verified in O(n). If the whole chain fails, the
/// `PrimitiveScans` entry points serve the scan from the in-process
/// sequential reference (and count a rescue), so they *never* return a
/// corrupted scan; the `checked_*` variants instead surface
/// [`FaultError::RetriesExhausted`].
pub struct CheckedExecutor {
    chain: Vec<Box<dyn PrimitiveScans>>,
    retries: u32,
    scans: Cell<u64>,
    attempts: Cell<u64>,
    detections: Cell<u64>,
    retried: Cell<u64>,
    fallbacks: Cell<u64>,
    rescues: Cell<u64>,
}

impl core::fmt::Debug for CheckedExecutor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CheckedExecutor")
            .field("chain_len", &self.chain.len())
            .field("retries", &self.retries)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CheckedExecutor {
    /// An executor whose first choice is `primary`; by default one
    /// retry per backend and no further fallbacks (the sequential
    /// reference always backstops the chain).
    pub fn new(primary: Box<dyn PrimitiveScans>) -> Self {
        CheckedExecutor {
            chain: vec![primary],
            retries: 1,
            scans: Cell::new(0),
            attempts: Cell::new(0),
            detections: Cell::new(0),
            retried: Cell::new(0),
            fallbacks: Cell::new(0),
            rescues: Cell::new(0),
        }
    }

    /// Append a backend to the fallback chain (tried after everything
    /// already in the chain).
    pub fn with_fallback(mut self, backend: Box<dyn PrimitiveScans>) -> Self {
        self.chain.push(backend);
        self
    }

    /// Retries per backend after a rejected output (default 1).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Snapshot of the executor's counters.
    pub fn stats(&self) -> CheckedStats {
        CheckedStats {
            scans: self.scans.get(),
            attempts: self.attempts.get(),
            detections: self.detections.get(),
            retries: self.retried.get(),
            fallbacks: self.fallbacks.get(),
            rescues: self.rescues.get(),
        }
    }

    fn run(&self, max: bool, a: &[u64]) -> crate::Result<Vec<u64>> {
        self.scans.set(self.scans.get() + 1);
        let mut attempts_here = 0u32;
        for (b_idx, backend) in self.chain.iter().enumerate() {
            if b_idx > 0 {
                self.fallbacks.set(self.fallbacks.get() + 1);
            }
            for attempt in 0..=self.retries {
                attempts_here += 1;
                self.attempts.set(self.attempts.get() + 1);
                if attempt > 0 {
                    self.retried.set(self.retried.get() + 1);
                }
                let out = if max {
                    backend.max_scan(a)
                } else {
                    backend.plus_scan(a)
                };
                let ok = if max {
                    verify_scan::<Max, u64>(a, &out)
                } else {
                    verify_scan::<Sum, u64>(a, &out)
                };
                match ok {
                    Ok(()) => return Ok(out),
                    Err(_) => self.detections.set(self.detections.get() + 1),
                }
            }
        }
        Err(FaultError::RetriesExhausted {
            attempts: attempts_here,
        })
    }

    /// Verified `+-scan`: correct output or a typed error.
    pub fn checked_plus_scan(&self, a: &[u64]) -> crate::Result<Vec<u64>> {
        self.run(false, a)
    }

    /// Verified `max-scan`: correct output or a typed error.
    pub fn checked_max_scan(&self, a: &[u64]) -> crate::Result<Vec<u64>> {
        self.run(true, a)
    }

    fn rescue(&self, max: bool, a: &[u64]) -> Vec<u64> {
        self.rescues.set(self.rescues.get() + 1);
        if max {
            scan_core::scan::<Max, _>(a)
        } else {
            scan_core::scan::<Sum, _>(a)
        }
    }
}

impl PrimitiveScans for CheckedExecutor {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(false, a).unwrap_or_else(|_| self.rescue(false, a))
    }

    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.run(true, a).unwrap_or_else(|_| self.rescue(true, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FaultyCircuitBackend;
    use crate::plan::FaultPlan;
    use scan_core::simulate::SoftwareScans;

    /// A backend that is wrong every time.
    struct AlwaysWrong;
    impl PrimitiveScans for AlwaysWrong {
        fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
            vec![u64::MAX; a.len()]
        }
        fn max_scan(&self, a: &[u64]) -> Vec<u64> {
            vec![u64::MAX; a.len()]
        }
    }

    #[test]
    fn clean_backend_passes_straight_through() {
        let ex = CheckedExecutor::new(Box::new(SoftwareScans));
        let a: Vec<u64> = (0..40).map(|i| i * 3).collect();
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap(),
            scan_core::scan::<Sum, _>(&a)
        );
        assert_eq!(
            ex.checked_max_scan(&a).unwrap(),
            scan_core::scan::<Max, _>(&a)
        );
        let s = ex.stats();
        assert_eq!(s.scans, 2);
        assert_eq!(s.attempts, 2);
        assert_eq!(s.detections, 0);
        assert_eq!(s.rescues, 0);
    }

    #[test]
    fn always_wrong_primary_falls_back() {
        let ex = CheckedExecutor::new(Box::new(AlwaysWrong)).with_fallback(Box::new(SoftwareScans));
        let a: Vec<u64> = (0..20).collect();
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap(),
            scan_core::scan::<Sum, _>(&a)
        );
        let s = ex.stats();
        assert_eq!(s.detections, 2, "both primary attempts rejected");
        assert_eq!(s.retries, 1);
        assert_eq!(s.fallbacks, 1);
    }

    #[test]
    fn exhausted_chain_is_a_typed_error_but_trait_rescues() {
        let ex = CheckedExecutor::new(Box::new(AlwaysWrong)).with_retries(2);
        let a: Vec<u64> = (0..10).collect();
        assert_eq!(
            ex.checked_plus_scan(&a).unwrap_err(),
            FaultError::RetriesExhausted { attempts: 3 }
        );
        // The PrimitiveScans view never returns garbage: it rescues.
        assert_eq!(ex.plus_scan(&a), scan_core::scan::<Sum, _>(&a));
        assert_eq!(ex.stats().rescues, 1);
    }

    #[test]
    fn faulty_circuit_is_tamed() {
        let a: Vec<u64> = (0..64).map(|i| (i * 13) % 127).collect();
        let faulty = FaultyCircuitBackend::new(64, FaultPlan::new(7));
        let ex = CheckedExecutor::new(Box::new(faulty)).with_retries(3);
        for _ in 0..30 {
            assert_eq!(ex.plus_scan(&a), scan_core::scan::<Sum, _>(&a));
            assert_eq!(ex.max_scan(&a), scan_core::scan::<Max, _>(&a));
        }
        let s = ex.stats();
        assert_eq!(s.scans, 60);
        assert!(s.detections > 0, "a plan faulting every scan must trip");
        assert!(s.attempts > s.scans);
    }

    #[test]
    fn empty_input() {
        let ex = CheckedExecutor::new(Box::new(SoftwareScans));
        assert!(ex.checked_plus_scan(&[]).unwrap().is_empty());
    }
}
