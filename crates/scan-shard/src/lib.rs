//! Sharded scan execution with shard-loss recovery.
//!
//! This crate lifts the paper's two-pass scan schedule one level up:
//! instead of blocks within one worker pool, a scan is partitioned
//! into contiguous ranges fanned across several *shards* — independent
//! supervisor threads, each owning its own [`scan_core`] worker pool —
//! and the per-shard totals are combined by the same exclusive
//! balanced-tree scan the paper uses for blocks ([`combine`]).
//!
//! Shards are deliberately treated as remote executors: the only way
//! in is a job channel, the only way out is a per-job reply channel,
//! and loss detection is purely observational (a reply, a watchdog
//! timeout, a closed channel, or output that fails verification).
//! Nothing in the executor shares mutable state with a shard, so the
//! model extends unchanged to a multi-process transport later.
//!
//! What the executor guarantees under [`RecoveryPolicy::Recover`]:
//! bit-equal output to the single-pool kernels whenever *any* compute
//! path remains — lost ranges are re-executed on survivors with seeded
//! backoff, then inline; lying shards are caught by an O(n) verify
//! pass, fixed in place, and quarantined behind a
//! [`scan_fault::Breaker`] until a probe run readmits them. Under
//! [`RecoveryPolicy::Fail`], the first loss surfaces as a typed
//! [`ShardError`] instead.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod combine;
pub mod error;
pub mod executor;
pub mod health;
mod pool;

pub use error::{LossCause, ShardError};
pub use executor::{RecoveryPolicy, ScanKind, ShardConfig, ShardedExecutor};
pub use health::{ShardHealth, ShardStatus};
