//! The sharded scan executor.
//!
//! A scan is split into contiguous ranges, one per admitted shard
//! (each shard being an independent supervisor thread with its own
//! worker pool, [`crate::pool`]), and runs in two rounds mirroring the
//! paper's two-pass schedule lifted one level up:
//!
//! 1. **Reduce**: every shard folds its range to a total.
//! 2. **Combine**: the executor tree-combines the totals into
//!    per-shard carries ([`crate::combine`]).
//! 3. **Scan**: every shard produces the exclusive scan of its range
//!    seeded with its carry.
//!
//! Around that schedule sits the robustness machinery:
//!
//! - **Loss detection** — a shard is lost for a run when it reports a
//!   contained worker panic, misses the watchdog window, closes its
//!   channel (dead supervisor), or returns output that fails the O(n)
//!   verification pass (a *lying* shard).
//! - **Recovery ladder** — lost ranges are re-executed on surviving
//!   shards with seeded, capped backoff between attempts
//!   ([`scan_core::backoff`]); if every survivor fails too, the
//!   executor computes the range inline (trusted, always succeeds).
//! - **Quarantine** — each shard has a [`scan_fault::Breaker`] on the
//!   executor's run clock: repeated losses open it, after which the
//!   shard is skipped until its quarantine elapses and a single probe
//!   run decides readmission.
//! - **Degradation** — when fewer than `min_live` shards are
//!   admitted, the run degrades to the ordinary single-pool
//!   `scan-core` kernels (or fails typed, under
//!   [`RecoveryPolicy::Fail`]).
//!
//! Determinism: given a fixed [`ChaosPlan`] and config, the whole
//! failure/recovery schedule is reproducible — jobs are numbered in
//! issue order on one counter, and every jitter draw is seeded.

use std::ops::Range;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use scan_core::backoff::Backoff;
use scan_core::{ExecError, Max, ScanDeadline, Segments, Sum};
use scan_fault::{Breaker, BreakerConfig, ChaosEvent, ChaosPlan, Gate};

use crate::combine::exclusive_combine;
use crate::error::{LossCause, ShardError};
use crate::health::{ShardHealth, ShardStatus};
use crate::combine::{load_pair, pair_combine};
use crate::pool::{Job, Output, Phase, Reply, Shard};

/// Lock a mutex, ignoring poisoning.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Producer index meaning "computed inline by the executor".
const INLINE: usize = usize::MAX;

/// The primitive scan family a sharded run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Exclusive `+-scan` (wrapping add; identity 0).
    Sum,
    /// Exclusive `max-scan` (identity `u64::MIN`, i.e. 0).
    Max,
}

impl ScanKind {
    /// The binary operator.
    #[inline]
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ScanKind::Sum => a.wrapping_add(b),
            ScanKind::Max => a.max(b),
        }
    }

    /// The operator's identity.
    #[inline]
    pub fn identity(self) -> u64 {
        0
    }
}

/// What the executor does when a shard is lost mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Re-execute lost ranges on survivors (then inline); degrade to
    /// the single-pool kernels when too few shards are live. Runs
    /// return correct results whenever any compute path remains.
    Recover,
    /// Surface the first loss as a typed [`ShardError::ShardLost`]
    /// (or [`ShardError::Degraded`]) instead of recovering — for
    /// callers that own their own retry policy.
    Fail,
}

/// Tuning knobs for [`ShardedExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of shards (independent supervisor threads + pools).
    pub shards: usize,
    /// Worker-pool lanes per shard.
    pub threads_per_shard: usize,
    /// How long the executor waits for one job's reply before
    /// declaring the shard lost for the run.
    pub watchdog: Duration,
    /// Re-execution attempts per lost range before falling back to
    /// the inline (trusted) compute path.
    pub reexec_retries: u32,
    /// Backoff between re-execution attempts (seeded jitter; see
    /// [`scan_core::backoff`]).
    pub backoff: Backoff,
    /// Per-shard circuit-breaker tuning, on the executor's run clock.
    pub breaker: BreakerConfig,
    /// Run the O(n) postcondition verification after assembly. This is
    /// what catches lying shards; disabling it trades that detection
    /// for one less sequential pass.
    pub verify: bool,
    /// Minimum admitted shards required to run sharded; below this the
    /// run degrades (or fails, under [`RecoveryPolicy::Fail`]).
    pub min_live: usize,
    /// Loss handling policy.
    pub policy: RecoveryPolicy,
    /// Deterministic fault schedule delivered to shard jobs
    /// ([`ChaosPlan::shard_event_for`]); `None` when quiet.
    pub chaos: Option<ChaosPlan>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            threads_per_shard: 1,
            watchdog: Duration::from_secs(5),
            reexec_retries: 3,
            backoff: Backoff {
                base: Duration::from_micros(50),
                jitter: Duration::from_micros(50),
                seed: 0x5aad_c0de_0b57_ac1e,
            },
            breaker: BreakerConfig::default(),
            verify: true,
            min_live: 1,
            policy: RecoveryPolicy::Recover,
            chaos: None,
        }
    }
}

/// Per-shard lifetime counters (losses by cause, successes).
#[derive(Debug, Default, Clone, Copy)]
struct ShardStats {
    served: u64,
    panics: u64,
    watchdog: u64,
    lies: u64,
    disconnects: u64,
}

/// Everything mutable, serialized under one lock: runs are one at a
/// time (like a pool submission), which also keeps the chaos job
/// numbering deterministic.
struct Inner {
    cfg: ShardConfig,
    shards: Vec<Shard>,
    breakers: Vec<Breaker>,
    stats: Vec<ShardStats>,
    clock: u64,
    jobs: u64,
    runs: u64,
    degraded_runs: u64,
    losses: u64,
    recoveries: u64,
    inline_rescues: u64,
}

/// Sharded scan executor: see the module docs for the model.
pub struct ShardedExecutor {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock(&self.inner);
        f.debug_struct("ShardedExecutor")
            .field("shards", &inner.shards.len())
            .field("runs", &inner.runs)
            .finish()
    }
}

impl ShardedExecutor {
    /// Build the executor and spawn its shards.
    pub fn new(cfg: ShardConfig) -> Self {
        let n = cfg.shards.max(1);
        let shards = (0..n)
            .map(|i| Shard::spawn(i, cfg.threads_per_shard))
            .collect();
        ShardedExecutor {
            inner: Mutex::new(Inner {
                cfg,
                shards,
                breakers: vec![Breaker::new(); n],
                stats: vec![ShardStats::default(); n],
                clock: 0,
                jobs: 0,
                runs: 0,
                degraded_runs: 0,
                losses: 0,
                recoveries: 0,
                inline_rescues: 0,
            }),
        }
    }

    /// Exclusive scan of `data` under `kind`. Copies the input into a
    /// shared buffer; use [`scan_arc`](Self::scan_arc) to avoid the
    /// copy on repeated runs over the same data.
    pub fn scan(&self, kind: ScanKind, data: &[u64]) -> Result<Vec<u64>, ShardError> {
        self.run(kind, &Arc::new(data.to_vec()), None)
    }

    /// Exclusive scan of shared data under `kind`.
    pub fn scan_arc(&self, kind: ScanKind, data: &Arc<Vec<u64>>) -> Result<Vec<u64>, ShardError> {
        self.run(kind, data, None)
    }

    /// Exclusive segmented scan: restarts at every true flag in
    /// `heads` (element 0 always begins a segment).
    pub fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        heads: &[bool],
    ) -> Result<Vec<u64>, ShardError> {
        if heads.len() != values.len() {
            return Err(ShardError::Invalid(scan_core::Error::LengthMismatch {
                expected: values.len(),
                actual: heads.len(),
            }));
        }
        self.run(
            kind,
            &Arc::new(values.to_vec()),
            Some(Arc::new(heads.to_vec())),
        )
    }

    /// Health snapshot: per-shard breaker state and loss counters plus
    /// executor-wide run/recovery counters.
    pub fn health(&self) -> ShardHealth {
        let inner = lock(&self.inner);
        ShardHealth {
            shards: (0..inner.shards.len())
                .map(|i| ShardStatus {
                    state: inner.breakers[i].state(),
                    alive: inner.shards[i].alive(),
                    served: inner.stats[i].served,
                    panics: inner.stats[i].panics,
                    watchdog_losses: inner.stats[i].watchdog,
                    lies: inner.stats[i].lies,
                    disconnects: inner.stats[i].disconnects,
                    quarantines: inner.breakers[i].quarantines(),
                    probes: inner.breakers[i].probes(),
                    skipped: inner.breakers[i].skipped(),
                })
                .collect(),
            runs: inner.runs,
            degraded_runs: inner.degraded_runs,
            losses: inner.losses,
            recoveries: inner.recoveries,
            inline_rescues: inner.inline_rescues,
        }
    }

    /// One full sharded run. The ambient [`scan_core::deadline`]
    /// scope, if any, bounds the whole run and is forwarded into every
    /// shard job.
    fn run(
        &self,
        kind: ScanKind,
        data: &Arc<Vec<u64>>,
        heads: Option<Arc<Vec<bool>>>,
    ) -> Result<Vec<u64>, ShardError> {
        let deadline = scan_core::deadline::current();
        let mut guard = lock(&self.inner);
        let inner = &mut *guard;
        inner.runs += 1;
        inner.clock += 1;
        let clock = inner.clock;
        let n = data.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if let Some(d) = &deadline {
            d.check().map_err(ShardError::from)?;
        }

        // Admission: breaker-gate every reachable shard.
        let nshards = inner.shards.len();
        let mut probing = vec![false; nshards];
        let mut admitted = vec![false; nshards];
        let mut live = Vec::new();
        for i in 0..nshards {
            if !inner.shards[i].alive() {
                continue;
            }
            match inner.breakers[i].gate(clock) {
                Gate::Full => {
                    admitted[i] = true;
                    live.push(i);
                }
                Gate::Probe => {
                    probing[i] = true;
                    admitted[i] = true;
                    live.push(i);
                }
                Gate::Skip => {}
            }
        }
        let need = inner.cfg.min_live.max(1);
        if live.len() < need {
            inner.degraded_runs += 1;
            if matches!(inner.cfg.policy, RecoveryPolicy::Fail) {
                return Err(ShardError::Degraded {
                    live: live.len(),
                    need,
                });
            }
            return degraded(kind, data, heads.as_deref().map(Vec::as_slice));
        }

        // Partition into one contiguous range per working shard.
        let k = live.len().min(n);
        let ranges = partition(n, k);
        let workers: Vec<usize> = live[..k].to_vec();
        let mut healthy = vec![true; nshards];

        // Round 1: reduce every range to its pair total.
        let r1 = run_phase(
            inner, kind, data, &heads, &deadline, &ranges, &workers, &admitted, &probing,
            &mut healthy, clock, None,
        )?;
        let mut totals = Vec::with_capacity(k);
        let mut producers1 = Vec::with_capacity(k);
        for (slot, (out, producer)) in r1.into_iter().enumerate() {
            let t = match out {
                Output::Total(t) => t,
                // Defensive: a phase mismatch is recomputed inline.
                Output::Scanned(_) => {
                    inner.inline_rescues += 1;
                    inline_total(kind, data, heads.as_deref().map(Vec::as_slice), ranges[slot].clone())
                }
            };
            totals.push(t);
            producers1.push(producer);
        }
        if let Some(d) = &deadline {
            d.check().map_err(ShardError::from)?;
        }

        // Combine: per-shard carries by exclusive tree scan.
        let carries = exclusive_combine(&totals, (kind.identity(), false), |a, b| {
            pair_combine(kind, a, b)
        });

        // Round 2: each range's exclusive scan, seeded with its carry.
        let r2 = run_phase(
            inner, kind, data, &heads, &deadline, &ranges, &workers, &admitted, &probing,
            &mut healthy, clock, Some(&carries),
        )?;
        let mut out = Vec::with_capacity(n);
        let mut producers2 = Vec::with_capacity(k);
        for (slot, (piece, producer)) in r2.into_iter().enumerate() {
            let range = ranges[slot].clone();
            match piece {
                Output::Scanned(v) if v.len() == range.len() => {
                    out.extend_from_slice(&v);
                    producers2.push(producer);
                }
                // A wrong-length or wrong-phase result is a lie in
                // shape rather than value: recompute inline, let the
                // verify pass below settle attribution.
                _ => {
                    inner.inline_rescues += 1;
                    out.extend_from_slice(&inline_scan(
                        kind,
                        data,
                        heads.as_deref().map(Vec::as_slice),
                        range,
                        carries[slot],
                    ));
                    producers2.push(INLINE);
                }
            }
        }

        // Verify: one sequential O(n) pass recomputes the recurrence,
        // fixes any wrong element in place, and attributes lies.
        if inner.cfg.verify {
            let mut state = (kind.identity(), false);
            for slot in 0..k {
                let carry_good = carries[slot] == state;
                let mut elem_bad = false;
                let mut true_total = (kind.identity(), false);
                for g in ranges[slot].clone() {
                    let e = load_pair(data, heads.as_deref().map(Vec::as_slice), g);
                    let expect = if e.1 { kind.identity() } else { state.0 };
                    if out[g] != expect {
                        elem_bad = true;
                        out[g] = expect;
                    }
                    state = pair_combine(kind, state, e);
                    true_total = pair_combine(kind, true_total, e);
                }
                if elem_bad {
                    inner.inline_rescues += 1;
                }
                // A wrong claimed total is a round-1 lie by this
                // slot's reduce producer.
                if totals[slot] != true_total {
                    blame(inner, &mut healthy, producers1[slot], &probing, clock)?;
                }
                // Wrong elements under a correct carry are a round-2
                // lie by this slot's scan producer. (Under a corrupted
                // carry the mismatch is the upstream liar's fault,
                // already blamed via its total.)
                if elem_bad && carry_good {
                    blame(inner, &mut healthy, producers2[slot], &probing, clock)?;
                }
            }
        }

        // Close the loop on the breakers: every shard that worked this
        // run without a loss or lie is a verified success (this is
        // also how a probing shard gets readmitted).
        for &s in &workers {
            if healthy[s] {
                inner.breakers[s].success();
            }
        }
        Ok(out)
    }
}

/// Balanced contiguous partition of `0..n` into `k` non-empty ranges.
fn partition(n: usize, k: usize) -> Vec<Range<usize>> {
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    (0..k)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let r = start..start + len;
            start += len;
            r
        })
        .collect()
}

/// Issue one job to `shard`, drawing its chaos event from the plan.
/// `None` means the shard is unreachable (send failed).
#[allow(clippy::too_many_arguments)]
fn issue(
    inner: &mut Inner,
    kind: ScanKind,
    data: &Arc<Vec<u64>>,
    heads: &Option<Arc<Vec<bool>>>,
    deadline: &Option<ScanDeadline>,
    range: Range<usize>,
    phase: Phase,
    shard: usize,
) -> Option<mpsc::Receiver<Reply>> {
    inner.jobs += 1;
    let inject = inner
        .cfg
        .chaos
        .map_or(ChaosEvent::None, |p| p.shard_event_for(inner.jobs));
    let (tx, rx) = mpsc::channel();
    let job = Job {
        kind,
        data: Arc::clone(data),
        heads: heads.clone(),
        range,
        phase,
        inject,
        deadline: deadline.clone(),
        reply: tx,
    };
    if inner.shards[shard].send(job) {
        Some(rx)
    } else {
        None
    }
}

/// Record one shard loss: this-run health, lifetime stats, breaker
/// failure. Under [`RecoveryPolicy::Fail`] the loss is surfaced as a
/// typed error.
fn lose(
    inner: &mut Inner,
    healthy: &mut [bool],
    shard: usize,
    cause: LossCause,
    probing: &[bool],
    clock: u64,
) -> Result<(), ShardError> {
    healthy[shard] = false;
    inner.losses += 1;
    match cause {
        LossCause::Panic => inner.stats[shard].panics += 1,
        LossCause::Watchdog => inner.stats[shard].watchdog += 1,
        LossCause::Lied => inner.stats[shard].lies += 1,
        LossCause::Disconnected => inner.stats[shard].disconnects += 1,
    }
    inner.breakers[shard].failure(&inner.cfg.breaker, shard as u64, clock, probing[shard]);
    if matches!(inner.cfg.policy, RecoveryPolicy::Fail) {
        return Err(ShardError::ShardLost { shard, cause });
    }
    Ok(())
}

/// Attribute a verification failure to `producer` (no-op for
/// inline-computed ranges, which cannot lie).
fn blame(
    inner: &mut Inner,
    healthy: &mut [bool],
    producer: usize,
    probing: &[bool],
    clock: u64,
) -> Result<(), ShardError> {
    if producer == INLINE {
        return Ok(());
    }
    lose(inner, healthy, producer, LossCause::Lied, probing, clock)
}

/// Run one phase (reduce, or scan when `carries` is given) across the
/// worker shards, with watchdog collection and the recovery ladder.
/// Returns each slot's output and its producer shard (or [`INLINE`]).
#[allow(clippy::too_many_arguments)]
fn run_phase(
    inner: &mut Inner,
    kind: ScanKind,
    data: &Arc<Vec<u64>>,
    heads: &Option<Arc<Vec<bool>>>,
    deadline: &Option<ScanDeadline>,
    ranges: &[Range<usize>],
    workers: &[usize],
    admitted: &[bool],
    probing: &[bool],
    healthy: &mut [bool],
    clock: u64,
    carries: Option<&[(u64, bool)]>,
) -> Result<Vec<(Output, usize)>, ShardError> {
    let phase_for = |slot: usize| match carries {
        None => Phase::Reduce,
        Some(c) => Phase::Scan { carry: c[slot] },
    };
    let salt = u64::from(carries.is_some());
    let mut outputs: Vec<Option<(Output, usize)>> = (0..ranges.len()).map(|_| None).collect();
    let mut pending = Vec::new();
    let mut to_recover = Vec::new();

    // Issue every slot's job to its assigned shard.
    for (slot, range) in ranges.iter().enumerate() {
        let s = workers[slot];
        if !healthy[s] || !inner.shards[s].alive() {
            // Lost in an earlier phase: route straight to recovery
            // (the loss was already recorded).
            to_recover.push(slot);
            continue;
        }
        match issue(
            inner,
            kind,
            data,
            heads,
            deadline,
            range.clone(),
            phase_for(slot),
            s,
        ) {
            Some(rx) => pending.push((slot, s, rx)),
            None => {
                lose(inner, healthy, s, LossCause::Disconnected, probing, clock)?;
                to_recover.push(slot);
            }
        }
    }

    // Collect under the watchdog.
    for (slot, s, rx) in pending {
        match rx.recv_timeout(inner.cfg.watchdog) {
            Ok(Reply {
                result: Ok(out), ..
            }) => {
                inner.stats[s].served += 1;
                outputs[slot] = Some((out, s));
            }
            Ok(Reply {
                result: Err(ExecError::WorkerLost { .. }),
                ..
            }) => {
                lose(inner, healthy, s, LossCause::Panic, probing, clock)?;
                to_recover.push(slot);
            }
            // The caller's deadline tripped inside the shard: the
            // whole run is over, not just this shard.
            Ok(Reply {
                result: Err(e), ..
            }) => return Err(ShardError::Exec(e)),
            Err(RecvTimeoutError::Timeout) => {
                lose(inner, healthy, s, LossCause::Watchdog, probing, clock)?;
                to_recover.push(slot);
            }
            Err(RecvTimeoutError::Disconnected) => {
                inner.shards[s].kill();
                lose(inner, healthy, s, LossCause::Disconnected, probing, clock)?;
                to_recover.push(slot);
            }
        }
    }

    // Recovery ladder: survivors with backoff, then inline.
    for slot in to_recover {
        let range = ranges[slot].clone();
        let mut recovered = None;
        for attempt in 1..=inner.cfg.reexec_retries {
            let survivors: Vec<usize> = (0..inner.shards.len())
                .filter(|&s| admitted[s] && healthy[s] && inner.shards[s].alive())
                .collect();
            if survivors.is_empty() {
                break;
            }
            let s = survivors[(slot + attempt as usize) % survivors.len()];
            thread::sleep(inner.cfg.backoff.delay(slot as u64, attempt, salt));
            let Some(rx) = issue(
                inner,
                kind,
                data,
                heads,
                deadline,
                range.clone(),
                phase_for(slot),
                s,
            ) else {
                lose(inner, healthy, s, LossCause::Disconnected, probing, clock)?;
                continue;
            };
            match rx.recv_timeout(inner.cfg.watchdog) {
                Ok(Reply {
                    result: Ok(out), ..
                }) => {
                    inner.stats[s].served += 1;
                    inner.recoveries += 1;
                    recovered = Some((out, s));
                    break;
                }
                Ok(Reply {
                    result: Err(ExecError::WorkerLost { .. }),
                    ..
                }) => lose(inner, healthy, s, LossCause::Panic, probing, clock)?,
                Ok(Reply {
                    result: Err(e), ..
                }) => return Err(ShardError::Exec(e)),
                Err(RecvTimeoutError::Timeout) => {
                    lose(inner, healthy, s, LossCause::Watchdog, probing, clock)?;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    inner.shards[s].kill();
                    lose(inner, healthy, s, LossCause::Disconnected, probing, clock)?;
                }
            }
        }
        let produced = match recovered {
            Some(x) => x,
            None => {
                inner.inline_rescues += 1;
                let out = match phase_for(slot) {
                    Phase::Reduce => {
                        Output::Total(inline_total(kind, data, heads.as_deref().map(Vec::as_slice), range))
                    }
                    Phase::Scan { carry } => {
                        Output::Scanned(inline_scan(kind, data, heads.as_deref().map(Vec::as_slice), range, carry))
                    }
                };
                (out, INLINE)
            }
        };
        outputs[slot] = Some(produced);
    }

    let mut done = Vec::with_capacity(ranges.len());
    for (slot, o) in outputs.into_iter().enumerate() {
        match o {
            Some(x) => done.push(x),
            // Defensive: never reached, but the phase must stay total.
            None => {
                inner.inline_rescues += 1;
                let out = match phase_for(slot) {
                    Phase::Reduce => Output::Total(inline_total(
                        kind,
                        data,
                        heads.as_deref().map(Vec::as_slice),
                        ranges[slot].clone(),
                    )),
                    Phase::Scan { carry } => Output::Scanned(inline_scan(
                        kind,
                        data,
                        heads.as_deref().map(Vec::as_slice),
                        ranges[slot].clone(),
                        carry,
                    )),
                };
                done.push((out, INLINE));
            }
        }
    }
    Ok(done)
}

/// Trusted sequential pair fold of a range.
fn inline_total(
    kind: ScanKind,
    data: &[u64],
    heads: Option<&[bool]>,
    range: Range<usize>,
) -> (u64, bool) {
    let mut acc = (kind.identity(), false);
    for g in range {
        acc = pair_combine(kind, acc, load_pair(data, heads, g));
    }
    acc
}

/// Trusted sequential exclusive scan of a range seeded with `carry`.
fn inline_scan(
    kind: ScanKind,
    data: &[u64],
    heads: Option<&[bool]>,
    range: Range<usize>,
    carry: (u64, bool),
) -> Vec<u64> {
    let mut out = Vec::with_capacity(range.len());
    let mut state = carry;
    for g in range {
        let e = load_pair(data, heads, g);
        out.push(if e.1 { kind.identity() } else { state.0 });
        state = pair_combine(kind, state, e);
    }
    out
}

/// Single-pool degradation: the ordinary `scan-core` kernels under the
/// ambient deadline.
fn degraded(
    kind: ScanKind,
    data: &Arc<Vec<u64>>,
    heads: Option<&[bool]>,
) -> Result<Vec<u64>, ShardError> {
    let r = match heads {
        None => match kind {
            ScanKind::Sum => scan_core::try_scan::<Sum, u64>(data),
            ScanKind::Max => scan_core::try_scan::<Max, u64>(data),
        },
        Some(h) => {
            let segs = Segments::from_flags(h.to_vec());
            match kind {
                ScanKind::Sum => scan_core::try_seg_scan::<Sum, u64>(data, &segs),
                ScanKind::Max => scan_core::try_seg_scan::<Max, u64>(data, &segs),
            }
        }
    };
    r.map_err(ShardError::from_core)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 31 + 7) % 257).collect()
    }

    #[test]
    fn partition_is_balanced_and_total() {
        for n in [1usize, 2, 5, 17, 100] {
            for k in 1..=n.min(8) {
                let ranges = partition(n, k);
                assert_eq!(ranges.len(), k);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges[k - 1].end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let (lo, hi) = ranges
                    .iter()
                    .fold((usize::MAX, 0), |(lo, hi), r| (lo.min(r.len()), hi.max(r.len())));
                assert!(hi - lo <= 1, "n={n} k={k}: unbalanced {lo}..{hi}");
            }
        }
    }

    #[test]
    fn matches_single_pool_scan_without_chaos() {
        for shards in [1usize, 2, 3] {
            let ex = ShardedExecutor::new(ShardConfig {
                shards,
                ..ShardConfig::default()
            });
            for n in [0usize, 1, 2, 7, 1000] {
                let a = data(n);
                assert_eq!(
                    ex.scan(ScanKind::Sum, &a).unwrap(),
                    scan_core::scan::<Sum, _>(&a),
                    "sum, shards={shards}, n={n}"
                );
                assert_eq!(
                    ex.scan(ScanKind::Max, &a).unwrap(),
                    scan_core::scan::<Max, _>(&a),
                    "max, shards={shards}, n={n}"
                );
            }
            let h = ex.health();
            assert_eq!(h.losses, 0);
            assert_eq!(h.degraded_runs, 0);
            assert!(h.shards.iter().all(|s| s.alive));
        }
    }

    #[test]
    fn segmented_matches_single_pool() {
        let ex = ShardedExecutor::new(ShardConfig {
            shards: 3,
            ..ShardConfig::default()
        });
        let a = data(500);
        let heads: Vec<bool> = (0..500).map(|i| i % 37 == 5).collect();
        let segs = Segments::from_flags(heads.clone());
        assert_eq!(
            ex.seg_scan(ScanKind::Sum, &a, &heads).unwrap(),
            scan_core::seg_scan::<Sum, u64>(&a, &segs)
        );
        assert_eq!(
            ex.seg_scan(ScanKind::Max, &a, &heads).unwrap(),
            scan_core::seg_scan::<Max, u64>(&a, &segs)
        );
    }

    #[test]
    fn head_length_mismatch_is_typed() {
        let ex = ShardedExecutor::new(ShardConfig::default());
        assert!(matches!(
            ex.seg_scan(ScanKind::Sum, &[1, 2, 3], &[true]),
            Err(ShardError::Invalid(scan_core::Error::LengthMismatch {
                expected: 3,
                actual: 1,
            }))
        ));
    }

    #[test]
    fn cancelled_deadline_aborts_typed() {
        let ex = ShardedExecutor::new(ShardConfig::default());
        let d = ScanDeadline::manual();
        d.cancel();
        let a = data(100);
        let got = scan_core::deadline::with_deadline(&d, || ex.scan(ScanKind::Sum, &a));
        assert_eq!(got, Err(ShardError::Exec(ExecError::Cancelled)));
    }
}
