//! Exclusive tree combine of per-shard totals.
//!
//! This is the paper's own balanced-tree exclusive scan (upsweep then
//! downsweep, §1), applied one level up: the per-shard totals from the
//! reduce round are combined into the carry each shard's scan round is
//! seeded with. The shard counts involved are tiny, but using the tree
//! keeps the combine associative-only — the same property the paper
//! demands of the operator — and gives it the usual O(log s) depth.
//!
//! The segmented *pair* operator the shards and the executor both fold
//! with lives here too: it is pure scan vocabulary, shared by both
//! sides of the channel boundary, whereas `pool` is the shard-private
//! supervisor machinery the executor must only reach via messages
//! (`cargo xtask lint` R9).

use crate::executor::ScanKind;

/// The segmented pair operator under `kind`: the flag records "a
/// segment head occurred in this span", which resets the value (paper
/// §2.3). With no heads present it degenerates to the plain operator,
/// so the flat and segmented kernels share one code path.
pub(crate) fn pair_combine(kind: ScanKind, a: (u64, bool), b: (u64, bool)) -> (u64, bool) {
    if b.1 {
        b
    } else {
        (kind.combine(a.0, b.0), a.1)
    }
}

/// Element `g` as a pair: its value and whether it begins a segment.
/// Element 0 always begins a segment (crate-wide convention); flat
/// scans have no heads at all.
pub(crate) fn load_pair(data: &[u64], heads: Option<&[bool]>, g: usize) -> (u64, bool) {
    let head = match heads {
        Some(h) => h[g] || g == 0,
        None => false,
    };
    (data[g], head)
}

/// Exclusive scan of `totals` under `comb` (associative, with
/// `identity`), via the balanced-tree upsweep/downsweep.
///
/// `out[i]` is the combination of `totals[..i]`, with `out[0] =
/// identity` — exactly the carry shard `i` must seed its local scan
/// with.
pub fn exclusive_combine<E, F>(totals: &[E], identity: E, comb: F) -> Vec<E>
where
    E: Copy,
    F: Fn(E, E) -> E,
{
    let n = totals.len();
    if n == 0 {
        return Vec::new();
    }
    let len = n.next_power_of_two();
    let mut tree: Vec<E> = Vec::with_capacity(len);
    tree.extend_from_slice(totals);
    tree.resize(len, identity);
    // Upsweep: internal nodes accumulate their left sibling.
    let mut d = 1;
    while d < len {
        let mut i = 2 * d - 1;
        while i < len {
            tree[i] = comb(tree[i - d], tree[i]);
            i += 2 * d;
        }
        d *= 2;
    }
    // Downsweep: clear the root, swap-and-combine on the way down.
    tree[len - 1] = identity;
    let mut d = len / 2;
    while d >= 1 {
        let mut i = 2 * d - 1;
        while i < len {
            // The parent's value is the prefix of everything before
            // this subtree; the left subtree's sum comes after it, so
            // the operands must combine in that order — `comb` is
            // associative but not necessarily commutative.
            let left = tree[i - d];
            tree[i - d] = tree[i];
            tree[i] = comb(tree[i], left);
            i += 2 * d;
        }
        d /= 2;
    }
    tree.truncate(n);
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference<E: Copy>(totals: &[E], identity: E, comb: impl Fn(E, E) -> E) -> Vec<E> {
        let mut out = Vec::with_capacity(totals.len());
        let mut acc = identity;
        for &t in totals {
            out.push(acc);
            acc = comb(acc, t);
        }
        out
    }

    #[test]
    fn matches_sequential_for_all_small_sizes() {
        for n in 0..=9usize {
            let totals: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            assert_eq!(
                exclusive_combine(&totals, 0u64, |a, b| a.wrapping_add(b)),
                reference(&totals, 0u64, |a, b| a.wrapping_add(b)),
                "sum, n = {n}"
            );
            assert_eq!(
                exclusive_combine(&totals, 0u64, |a, b| a.max(b)),
                reference(&totals, 0u64, |a, b| a.max(b)),
                "max, n = {n}"
            );
        }
    }

    #[test]
    fn works_for_the_segmented_pair_operator() {
        // The pair operator used for segmented carries: the flag marks
        // "a segment head occurred", which resets the value.
        let comb = |a: (u64, bool), b: (u64, bool)| {
            if b.1 {
                b
            } else {
                (a.0.wrapping_add(b.0), a.1)
            }
        };
        let totals = [(5u64, false), (7, true), (2, false), (4, true), (1, false)];
        assert_eq!(
            exclusive_combine(&totals, (0, false), comb),
            reference(&totals, (0, false), comb)
        );
    }
}
