//! Typed failures of the sharded executor.

use core::fmt;

use scan_core::ExecError;

/// Why a shard was declared lost for (part of) a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// The shard's worker pool contained one or more task panics and
    /// the job reported [`ExecError::WorkerLost`]. The shard itself is
    /// still alive.
    Panic,
    /// The shard did not reply within the configured watchdog window.
    /// It may still be alive (merely slow); its late reply, if any, is
    /// discarded.
    Watchdog,
    /// The shard replied with a result that failed the O(n)
    /// postcondition verification — a wrong per-shard total or wrong
    /// output elements.
    Lied,
    /// The shard's supervisor thread is gone: its job channel closed
    /// without a reply. The shard is dead for the rest of the
    /// executor's life.
    Disconnected,
}

impl fmt::Display for LossCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossCause::Panic => write!(f, "contained worker panic"),
            LossCause::Watchdog => write!(f, "watchdog timeout"),
            LossCause::Lied => write!(f, "failed output verification"),
            LossCause::Disconnected => write!(f, "supervisor thread gone"),
        }
    }
}

/// Errors reported by [`crate::ShardedExecutor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A shard was lost mid-run and the executor's recovery policy is
    /// [`crate::RecoveryPolicy::Fail`]. Under
    /// [`crate::RecoveryPolicy::Recover`] the loss is handled by
    /// re-executing the range on survivors instead.
    ShardLost {
        /// Index of the lost shard.
        shard: usize,
        /// What the executor observed.
        cause: LossCause,
    },
    /// Too few live shards to run sharded and the recovery policy is
    /// [`crate::RecoveryPolicy::Fail`]. Under
    /// [`crate::RecoveryPolicy::Recover`] the run degrades to the
    /// single-pool kernels instead.
    Degraded {
        /// Shards currently admitted by their breakers.
        live: usize,
        /// The configured `min_live` floor.
        need: usize,
    },
    /// The execution layer failed (deadline expired, cancelled). The
    /// whole run is abandoned — this is the caller's deadline, not a
    /// shard fault.
    Exec(ExecError),
    /// A precondition on the inputs was violated (e.g. a segment-head
    /// vector of the wrong length).
    Invalid(scan_core::Error),
}

impl From<ExecError> for ShardError {
    fn from(e: ExecError) -> Self {
        ShardError::Exec(e)
    }
}

impl ShardError {
    /// Fold a `scan-core` error into the shard error space: execution
    /// failures stay execution failures, everything else is an input
    /// problem.
    pub fn from_core(e: scan_core::Error) -> Self {
        match e {
            scan_core::Error::Exec(x) => ShardError::Exec(x),
            other => ShardError::Invalid(other),
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ShardLost { shard, cause } => {
                write!(f, "shard {shard} lost: {cause}")
            }
            ShardError::Degraded { live, need } => {
                write!(f, "degraded: {live} live shard(s), {need} required")
            }
            ShardError::Exec(e) => write!(f, "execution failed: {e}"),
            ShardError::Invalid(e) => write!(f, "invalid input: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ShardError::ShardLost {
            shard: 2,
            cause: LossCause::Watchdog,
        };
        assert_eq!(e.to_string(), "shard 2 lost: watchdog timeout");
        let e = ShardError::ShardLost {
            shard: 0,
            cause: LossCause::Lied,
        };
        assert_eq!(e.to_string(), "shard 0 lost: failed output verification");
        let e = ShardError::Degraded { live: 1, need: 2 };
        assert_eq!(e.to_string(), "degraded: 1 live shard(s), 2 required");
        let e = ShardError::Exec(ExecError::DeadlineExceeded);
        assert_eq!(e.to_string(), "execution failed: deadline exceeded");
        let e = ShardError::Invalid(scan_core::Error::LengthMismatch {
            expected: 3,
            actual: 2,
        });
        assert_eq!(e.to_string(), "invalid input: length mismatch: expected 3, got 2");
    }

    #[test]
    fn core_errors_split_into_exec_and_invalid() {
        assert_eq!(
            ShardError::from_core(scan_core::Error::Exec(ExecError::Cancelled)),
            ShardError::Exec(ExecError::Cancelled)
        );
        assert!(matches!(
            ShardError::from_core(scan_core::Error::EmptyInput { op: "x" }),
            ShardError::Invalid(_)
        ));
    }
}
