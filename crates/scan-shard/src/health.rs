//! Observable health of a sharded executor.

use scan_fault::BreakerState;

/// Point-in-time status of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// The shard's breaker position.
    pub state: BreakerState,
    /// Whether the shard's supervisor thread is still reachable.
    pub alive: bool,
    /// Jobs this shard completed successfully (verified or not yet
    /// verified).
    pub served: u64,
    /// Losses attributed to contained worker panics.
    pub panics: u64,
    /// Losses attributed to watchdog timeouts.
    pub watchdog_losses: u64,
    /// Results that failed the O(n) postcondition verification.
    pub lies: u64,
    /// Losses attributed to a dead supervisor thread.
    pub disconnects: u64,
    /// Times the shard's breaker opened.
    pub quarantines: u64,
    /// Probation probes granted after a quarantine elapsed.
    pub probes: u64,
    /// Runs during which the shard was skipped while quarantined.
    pub skipped: u64,
}

/// Snapshot of the whole executor's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Per-shard status, indexed by shard.
    pub shards: Vec<ShardStatus>,
    /// Scan runs served (sharded or degraded).
    pub runs: u64,
    /// Runs that fell below `min_live` and degraded to the single-pool
    /// kernels.
    pub degraded_runs: u64,
    /// Shard losses observed across all runs (every cause).
    pub losses: u64,
    /// Lost ranges successfully re-executed on a survivor shard.
    pub recoveries: u64,
    /// Lost or lying ranges recomputed inline by the executor itself
    /// (the trusted bottom rung of the recovery ladder).
    pub inline_rescues: u64,
}

impl ShardHealth {
    /// Shards currently quarantined (breaker open).
    pub fn quarantined(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| !matches!(s.state, BreakerState::Closed))
            .count()
    }
}
