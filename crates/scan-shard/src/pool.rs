//! Shard supervisors: one long-lived thread per shard, each owning a
//! private `scan-core` worker pool.
//!
//! A shard is deliberately structured like a remote executor even
//! though it lives in-process: the only way in is a job message over a
//! channel, the only way out is a reply message over the job's own
//! reply channel, and the supervisor may die at any point (chaos
//! `ShardKill` simulates a hard crash by exiting the loop without
//! replying). The executor therefore never shares mutable state with a
//! shard — loss detection is purely observational (reply, timeout, or
//! closed channel), which is exactly the discipline a multi-process
//! transport would force later.
//!
//! This file is the crate's one sanctioned thread-spawn site (see the
//! `xtask` `no-raw-spawn` lint): shard supervisors are long-lived,
//! individually killable, and must *not* be joined while a job is in
//! flight — a watchdog-lost shard may still be running — so scoped
//! threads are the wrong tool.

use std::ops::Range;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;

use scan_core::pool::WorkerPool;
use scan_core::{ExecError, ScanDeadline};
use scan_fault::ChaosEvent;

use crate::combine::{load_pair, pair_combine};
use crate::executor::ScanKind;

/// Lock a mutex, ignoring poisoning (the partial/output slots hold
/// plain data; a poisoned lock still guards a consistent value).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which half of the two-round sharded scan a job runs.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    /// Fold the range to the shard's pair total.
    Reduce,
    /// Produce the exclusive scan of the range seeded with `carry`.
    Scan {
        /// Pair carry: combination of everything before the range.
        carry: (u64, bool),
    },
}

/// What a successful job returns.
#[derive(Debug)]
pub(crate) enum Output {
    /// Reduce round: the range's pair total.
    Total((u64, bool)),
    /// Scan round: the exclusive scan of the range.
    Scanned(Vec<u64>),
}

/// A job's reply, sent on the job's own channel. The executor knows
/// which shard a reply channel belongs to, so the reply carries only
/// the result.
#[derive(Debug)]
pub(crate) struct Reply {
    pub result: Result<Output, ExecError>,
}

/// One unit of work for a shard.
pub(crate) struct Job {
    pub kind: ScanKind,
    pub data: Arc<Vec<u64>>,
    pub heads: Option<Arc<Vec<bool>>>,
    pub range: Range<usize>,
    pub phase: Phase,
    /// Chaos event scheduled for this job (`None` when quiet).
    pub inject: ChaosEvent,
    pub deadline: Option<ScanDeadline>,
    pub reply: Sender<Reply>,
}

/// Handle to one shard supervisor thread.
pub(crate) struct Shard {
    tx: Option<Sender<Job>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Shard {
    /// Spawn shard `index` with a private pool of `threads` lanes. A
    /// failed OS spawn yields a permanently-dead shard rather than an
    /// error — the executor treats it like any other disconnected
    /// shard.
    pub fn spawn(index: usize, threads: usize) -> Shard {
        let (tx, rx) = mpsc::channel::<Job>();
        let handle = thread::Builder::new()
            .name(format!("scan-shard-{index}"))
            .spawn(move || shard_loop(threads, rx));
        match handle {
            Ok(h) => Shard {
                tx: Some(tx),
                handle: Some(h),
            },
            Err(_) => Shard {
                tx: None,
                handle: None,
            },
        }
    }

    /// Whether the job channel is still open from our side. (The
    /// thread may additionally have died; that is discovered on send.)
    pub fn alive(&self) -> bool {
        self.tx.is_some()
    }

    /// Send a job; `false` means the shard is gone. A `false` return
    /// also retires the channel so later callers see `alive() ==
    /// false` without retrying.
    pub fn send(&mut self, job: Job) -> bool {
        match &self.tx {
            Some(tx) => {
                if tx.send(job).is_ok() {
                    true
                } else {
                    self.tx = None;
                    false
                }
            }
            None => false,
        }
    }

    /// Retire the shard: drop the sender so the supervisor drains and
    /// exits. Joining is deferred to `Drop`.
    pub fn kill(&mut self) {
        self.tx = None;
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        // Close the channel first, or the join would wait forever.
        self.tx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Supervisor body: serve jobs until the channel closes or a chaos
/// kill takes the shard down.
fn shard_loop(threads: usize, rx: Receiver<Job>) {
    let pool = WorkerPool::new(threads);
    for job in rx {
        match job.inject {
            // Hard crash: exit without replying. The job's reply
            // channel closes, which is how the executor learns.
            ChaosEvent::ShardKill => return,
            ChaosEvent::Delay(d) => thread::sleep(d),
            ChaosEvent::Panic => {
                // A task panic inside the shard's own pool: contained
                // there, reported as a typed WorkerLost.
                let err = pool
                    .try_run(1, None, |_| panic!("chaos: injected shard task panic"))
                    .err()
                    .unwrap_or(ExecError::WorkerLost { panics: 1 });
                let _ = job.reply.send(Reply { result: Err(err) });
                continue;
            }
            _ => {}
        }
        let lie = matches!(job.inject, ChaosEvent::CarryCorrupt | ChaosEvent::Lie);
        let result = execute(&pool, &job).map(|out| if lie { corrupt(out) } else { out });
        let _ = job.reply.send(Reply { result });
    }
}

/// Flip one bit of the result — a lying shard. The corruption is
/// minimal on purpose: the O(n) verifier must catch even a single
/// flipped bit in a carry or an output element.
fn corrupt(out: Output) -> Output {
    match out {
        Output::Total((v, f)) => Output::Total((v ^ 1, f)),
        Output::Scanned(mut v) => {
            if let Some(x) = v.first_mut() {
                *x ^= 1;
            }
            Output::Scanned(v)
        }
    }
}

/// Run one job on the shard's pool.
fn execute(pool: &WorkerPool, job: &Job) -> Result<Output, ExecError> {
    let kind = job.kind;
    let data = &job.data[..];
    let heads = job.heads.as_deref().map(Vec::as_slice);
    let deadline = job.deadline.as_ref();
    match job.phase {
        Phase::Reduce => {
            blocked_reduce(pool, kind, data, heads, job.range.clone(), deadline).map(Output::Total)
        }
        Phase::Scan { carry } => {
            blocked_scan(pool, kind, data, heads, job.range.clone(), carry, deadline)
                .map(Output::Scanned)
        }
    }
}

/// Split `len` elements into at most `pool.threads()` equal blocks;
/// returns `(block_len, block_count)` with `block_count * block_len >=
/// len` and every block non-empty.
fn blocking(pool: &WorkerPool, len: usize) -> (usize, usize) {
    let lanes = pool.threads().min(len).max(1);
    let block = len.div_ceil(lanes);
    (block, len.div_ceil(block))
}

/// Pair fold of the range, blocked across the shard's pool.
fn blocked_reduce(
    pool: &WorkerPool,
    kind: ScanKind,
    data: &[u64],
    heads: Option<&[bool]>,
    range: Range<usize>,
    deadline: Option<&ScanDeadline>,
) -> Result<(u64, bool), ExecError> {
    let id = (kind.identity(), false);
    let len = range.len();
    if len == 0 {
        return Ok(id);
    }
    let (block, nb) = blocking(pool, len);
    let partials: Vec<Mutex<(u64, bool)>> = (0..nb).map(|_| Mutex::new(id)).collect();
    pool.try_run(nb, deadline, |j| {
        let lo = range.start + j * block;
        let hi = (lo + block).min(range.end);
        let mut acc = id;
        for g in lo..hi {
            acc = pair_combine(kind, acc, load_pair(data, heads, g));
        }
        *lock(&partials[j]) = acc;
    })?;
    let mut total = id;
    for p in &partials {
        total = pair_combine(kind, total, *lock(p));
    }
    Ok(total)
}

/// Exclusive scan of the range seeded with `carry`, blocked two-pass
/// across the shard's pool: block totals, an exclusive pass over them,
/// then per-block emission. A segment head emits the identity; any
/// other element emits the pair state accumulated before it.
fn blocked_scan(
    pool: &WorkerPool,
    kind: ScanKind,
    data: &[u64],
    heads: Option<&[bool]>,
    range: Range<usize>,
    carry: (u64, bool),
    deadline: Option<&ScanDeadline>,
) -> Result<Vec<u64>, ExecError> {
    let len = range.len();
    let mut out = vec![0u64; len];
    if len == 0 {
        return Ok(out);
    }
    let id = (kind.identity(), false);
    let (block, nb) = blocking(pool, len);
    // Pass 1: block pair totals.
    let partials: Vec<Mutex<(u64, bool)>> = (0..nb).map(|_| Mutex::new(id)).collect();
    pool.try_run(nb, deadline, |j| {
        let lo = range.start + j * block;
        let hi = (lo + block).min(range.end);
        let mut acc = id;
        for g in lo..hi {
            acc = pair_combine(kind, acc, load_pair(data, heads, g));
        }
        *lock(&partials[j]) = acc;
    })?;
    // Exclusive pass over block totals, seeded with the shard carry.
    let mut carries = Vec::with_capacity(nb);
    let mut state = carry;
    for p in &partials {
        carries.push(state);
        state = pair_combine(kind, state, *lock(p));
    }
    // Pass 2: emit each block from its carry.
    {
        let chunks: Vec<Mutex<&mut [u64]>> = out.chunks_mut(block).map(Mutex::new).collect();
        pool.try_run(nb, deadline, |j| {
            let lo = range.start + j * block;
            let hi = (lo + block).min(range.end);
            let mut state = carries[j];
            let mut chunk = lock(&chunks[j]);
            for (k, g) in (lo..hi).enumerate() {
                let e = load_pair(data, heads, g);
                chunk[k] = if e.1 { kind.identity() } else { state.0 };
                state = pair_combine(kind, state, e);
            }
        })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::{Max, Sum};

    fn roundtrip(kind: ScanKind, data: &[u64], heads: Option<&[bool]>) -> Vec<u64> {
        let pool = WorkerPool::new(2);
        let range = 0..data.len();
        let total = blocked_reduce(&pool, kind, data, heads, range.clone(), None).unwrap();
        // Whole input in one shard: carry is the identity pair, and the
        // reduce total must equal the inclusive fold.
        let mut acc = (kind.identity(), false);
        for g in 0..data.len() {
            acc = pair_combine(kind, acc, load_pair(data, heads, g));
        }
        assert_eq!(total, acc);
        blocked_scan(&pool, kind, data, heads, range, (kind.identity(), false), None).unwrap()
    }

    #[test]
    fn flat_kernels_match_scan_core() {
        let data: Vec<u64> = (0..257).map(|i| (i * 7 + 3) % 101).collect();
        assert_eq!(
            roundtrip(ScanKind::Sum, &data, None),
            scan_core::scan::<Sum, _>(&data)
        );
        assert_eq!(
            roundtrip(ScanKind::Max, &data, None),
            scan_core::scan::<Max, _>(&data)
        );
    }

    #[test]
    fn segmented_kernels_match_scan_core() {
        let data: Vec<u64> = (0..100).map(|i| i * 3 + 1).collect();
        let heads: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        let segs = scan_core::Segments::from_flags(heads.clone());
        assert_eq!(
            roundtrip(ScanKind::Sum, &data, Some(&heads)),
            scan_core::seg_scan::<Sum, u64>(&data, &segs)
        );
        assert_eq!(
            roundtrip(ScanKind::Max, &data, Some(&heads)),
            scan_core::seg_scan::<Max, u64>(&data, &segs)
        );
    }

    #[test]
    fn scan_with_carry_continues_a_prefix() {
        // Split [0, 200) into two ranges; the second seeded with the
        // first's total must reproduce the tail of the full scan.
        let data: Vec<u64> = (0..200).map(|i| i + 1).collect();
        let pool = WorkerPool::new(1);
        let full = scan_core::scan::<Sum, _>(&data);
        let t0 = blocked_reduce(&pool, ScanKind::Sum, &data, None, 0..120, None).unwrap();
        let tail =
            blocked_scan(&pool, ScanKind::Sum, &data, None, 120..200, t0, None).unwrap();
        assert_eq!(tail[..], full[120..]);
    }

    #[test]
    fn injected_panic_is_contained_and_shard_survives() {
        use std::sync::mpsc;
        use std::sync::Arc;

        let mut shard = Shard::spawn(0, 1);
        let data = Arc::new((1u64..=50).collect::<Vec<_>>());

        let send = |shard: &mut Shard, inject| {
            let (tx, rx) = mpsc::channel();
            assert!(shard.send(Job {
                kind: ScanKind::Sum,
                data: Arc::clone(&data),
                heads: None,
                range: 0..data.len(),
                phase: Phase::Reduce,
                inject,
                deadline: None,
                reply: tx,
            }));
            rx
        };

        // The panic is contained inside the shard's own pool and
        // reported as a typed worker loss...
        let rx = send(&mut shard, ChaosEvent::Panic);
        let reply = rx.recv().unwrap();
        assert!(matches!(
            reply.result,
            Err(ExecError::WorkerLost { .. })
        ));

        // ...and the shard keeps serving afterwards.
        let rx = send(&mut shard, ChaosEvent::None);
        let reply = rx.recv().unwrap();
        match reply.result {
            Ok(Output::Total(t)) => assert_eq!(t, (50 * 51 / 2, false)),
            other => panic!("expected a clean total, got {other:?}"),
        }
        assert!(shard.alive());
    }
}
