//! Property tests: without chaos, the sharded executor is
//! observationally identical to the single-pool `scan-core` kernels —
//! flat and segmented, both operators, across shard counts and pool
//! widths, including degenerate inputs (empty, shorter than the shard
//! count).

use proptest::prelude::*;
use scan_core::{Max, Segments, Sum};
use scan_shard::{ScanKind, ShardConfig, ShardedExecutor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_equals_single_pool(
        shards in 1usize..=8,
        threads in 1usize..=2,
        values in proptest::collection::vec(0u64..1000, 0..300),
        flags in proptest::collection::vec(any::<bool>(), 300),
    ) {
        let ex = ShardedExecutor::new(ShardConfig {
            shards,
            threads_per_shard: threads,
            ..ShardConfig::default()
        });

        prop_assert_eq!(
            ex.scan(ScanKind::Sum, &values).unwrap(),
            scan_core::scan::<Sum, _>(&values)
        );
        prop_assert_eq!(
            ex.scan(ScanKind::Max, &values).unwrap(),
            scan_core::scan::<Max, _>(&values)
        );

        let heads: Vec<bool> = flags[..values.len()].to_vec();
        let segs = Segments::from_flags(heads.clone());
        prop_assert_eq!(
            ex.seg_scan(ScanKind::Sum, &values, &heads).unwrap(),
            scan_core::seg_scan::<Sum, u64>(&values, &segs)
        );
        prop_assert_eq!(
            ex.seg_scan(ScanKind::Max, &values, &heads).unwrap(),
            scan_core::seg_scan::<Max, u64>(&values, &segs)
        );

        let h = ex.health();
        prop_assert_eq!(h.losses, 0);
        prop_assert_eq!(h.degraded_runs, 0);
        prop_assert_eq!(h.inline_rescues, 0);
    }
}
