//! Deterministic chaos suite for the sharded executor.
//!
//! Every scenario is driven by a seeded [`ChaosPlan`] delivered
//! through the shard job stream ([`ChaosPlan::shard_event_for`]), so
//! the whole failure/recovery schedule replays identically: which job
//! is killed, delayed, or corrupted depends only on the plan's periods
//! and the executor's job counter.

use std::time::Duration;

use scan_core::{Max, Segments, Sum};
use scan_fault::{BreakerConfig, BreakerState, ChaosPlan};
use scan_shard::{
    LossCause, RecoveryPolicy, ScanKind, ShardConfig, ShardError, ShardedExecutor,
};

fn data(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i * 131 + 17) % 509).collect()
}

fn cfg(shards: usize, chaos: ChaosPlan) -> ShardConfig {
    ShardConfig {
        shards,
        chaos: Some(chaos),
        ..ShardConfig::default()
    }
}

/// A shard killed mid-scan under `Recover`: its ranges are re-executed
/// on survivors (or inline once everyone is dead) and the output stays
/// bit-equal to the single-pool kernel.
#[test]
fn killed_shard_recovers_bit_equal() {
    let plan = ChaosPlan {
        shard_kill_every: 2,
        ..ChaosPlan::quiet(7)
    };
    let ex = ShardedExecutor::new(cfg(3, plan));
    let a = data(1000);
    let want = scan_core::scan::<Sum, _>(&a);
    assert_eq!(ex.scan(ScanKind::Sum, &a).unwrap(), want);
    let h = ex.health();
    assert!(h.losses >= 1, "kill must register as a loss: {h:?}");
    assert!(
        h.recoveries + h.inline_rescues >= 1,
        "lost ranges must be re-executed: {h:?}"
    );
    assert!(
        h.shards.iter().any(|s| s.disconnects >= 1),
        "a killed shard is observed as disconnected: {h:?}"
    );
    // Later runs keep serving correct answers no matter how many
    // shards the plan has taken down by now.
    assert_eq!(ex.scan(ScanKind::Sum, &a).unwrap(), want);
}

/// A stalled shard trips the watchdog, is declared lost, and its range
/// is computed by the trusted inline path.
#[test]
fn stalled_shard_trips_watchdog() {
    let plan = ChaosPlan {
        shard_delay_every: 1,
        delay_us: 100_000,
        ..ChaosPlan::quiet(11)
    };
    let ex = ShardedExecutor::new(ShardConfig {
        watchdog: Duration::from_millis(10),
        reexec_retries: 1,
        ..cfg(2, plan)
    });
    let a = data(300);
    assert_eq!(ex.scan(ScanKind::Sum, &a).unwrap(), scan_core::scan::<Sum, _>(&a));
    let h = ex.health();
    assert!(
        h.shards.iter().any(|s| s.watchdog_losses >= 1),
        "stall must be seen as a watchdog loss: {h:?}"
    );
    assert!(h.inline_rescues >= 1, "{h:?}");
}

/// A lying shard (corrupted carry, then corrupted output) is caught by
/// the verification pass, fixed in place, quarantined by its breaker,
/// and readmitted through a clean probation probe. Output is bit-equal
/// on every run throughout.
#[test]
fn lying_shard_is_quarantined_then_probed_back() {
    let plan = ChaosPlan {
        carry_corrupt_every: 5,
        ..ChaosPlan::quiet(13)
    };
    let ex = ShardedExecutor::new(ShardConfig {
        breaker: BreakerConfig {
            failure_threshold: 1,
            base_quarantine: 2,
            jitter: 0,
            ..BreakerConfig::default()
        },
        ..cfg(2, plan)
    });
    let a = data(200);
    let want = scan_core::scan::<Sum, _>(&a);
    let seg_heads: Vec<bool> = (0..a.len()).map(|i| i % 23 == 4).collect();
    let seg_want = scan_core::seg_scan::<Sum, u64>(&a, &Segments::from_flags(seg_heads.clone()));

    // Readmission = a shard observed Open at one snapshot and Closed
    // at a later one, having served at least one probation probe in
    // between.
    let mut was_open = [false; 2];
    let mut saw_quarantine = false;
    let mut saw_readmission = false;
    for run in 0..30 {
        // Alternate flat and segmented so both kernels face the liar.
        if run % 2 == 0 {
            assert_eq!(ex.scan(ScanKind::Sum, &a).unwrap(), want, "run {run}");
        } else {
            assert_eq!(
                ex.seg_scan(ScanKind::Sum, &a, &seg_heads).unwrap(),
                seg_want,
                "run {run}"
            );
        }
        let h = ex.health();
        for (i, s) in h.shards.iter().enumerate() {
            match s.state {
                BreakerState::Open { .. } => {
                    saw_quarantine = true;
                    was_open[i] = true;
                }
                BreakerState::Closed => {
                    if was_open[i] && s.probes >= 1 {
                        saw_readmission = true;
                    }
                }
            }
        }
        if saw_quarantine && saw_readmission {
            break;
        }
    }
    let h = ex.health();
    assert!(saw_quarantine, "a lie must open the liar's breaker: {h:?}");
    assert!(
        saw_readmission,
        "a clean probe must reclose the breaker: {h:?}"
    );
    assert!(h.shards.iter().map(|s| s.lies).sum::<u64>() >= 1, "{h:?}");
    assert!(
        h.inline_rescues >= 1,
        "lie fixups are counted as inline rescues: {h:?}"
    );
    assert!(
        h.shards.iter().all(|s| s.alive),
        "lying shards are quarantined, not killed: {h:?}"
    );
}

/// When the plan kills every shard, the executor finishes the first
/// run inline and then degrades to the single-pool kernels — still
/// bit-equal, with the degradation visible in the health snapshot.
#[test]
fn total_shard_loss_degrades_gracefully() {
    let plan = ChaosPlan {
        shard_kill_every: 1,
        ..ChaosPlan::quiet(17)
    };
    let ex = ShardedExecutor::new(cfg(2, plan));
    let a = data(400);
    let want = scan_core::scan::<Max, _>(&a);
    assert_eq!(ex.scan(ScanKind::Max, &a).unwrap(), want);
    assert_eq!(ex.scan(ScanKind::Max, &a).unwrap(), want);
    let h = ex.health();
    assert!(h.shards.iter().all(|s| !s.alive), "{h:?}");
    assert!(h.inline_rescues >= 2, "{h:?}");
    assert!(h.degraded_runs >= 1, "{h:?}");
    assert_eq!(h.runs, 2);
}

/// Under `RecoveryPolicy::Fail` the first loss surfaces as a typed
/// error instead of being recovered.
#[test]
fn fail_policy_surfaces_typed_losses() {
    // Killed shard → channel closes → Disconnected.
    let ex = ShardedExecutor::new(ShardConfig {
        policy: RecoveryPolicy::Fail,
        ..cfg(
            2,
            ChaosPlan {
                shard_kill_every: 1,
                ..ChaosPlan::quiet(19)
            },
        )
    });
    let a = data(100);
    assert_eq!(
        ex.scan(ScanKind::Sum, &a),
        Err(ShardError::ShardLost {
            shard: 0,
            cause: LossCause::Disconnected,
        })
    );

    // Stalled shard → Watchdog.
    let ex = ShardedExecutor::new(ShardConfig {
        policy: RecoveryPolicy::Fail,
        watchdog: Duration::from_millis(10),
        ..cfg(
            2,
            ChaosPlan {
                shard_delay_every: 1,
                delay_us: 100_000,
                ..ChaosPlan::quiet(19)
            },
        )
    });
    assert_eq!(
        ex.scan(ScanKind::Sum, &a),
        Err(ShardError::ShardLost {
            shard: 0,
            cause: LossCause::Watchdog,
        })
    );

    // Lying shard → Lied (caught by the verify pass).
    let ex = ShardedExecutor::new(ShardConfig {
        policy: RecoveryPolicy::Fail,
        ..cfg(
            2,
            ChaosPlan {
                carry_corrupt_every: 1,
                ..ChaosPlan::quiet(19)
            },
        )
    });
    assert_eq!(
        ex.scan(ScanKind::Sum, &a),
        Err(ShardError::ShardLost {
            shard: 0,
            cause: LossCause::Lied,
        })
    );
}

/// Below the `min_live` floor the run degrades under `Recover` and
/// fails typed under `Fail`.
#[test]
fn min_live_floor_controls_degradation() {
    let a = data(50);
    let want = scan_core::scan::<Sum, _>(&a);

    let ex = ShardedExecutor::new(ShardConfig {
        shards: 1,
        min_live: 2,
        ..ShardConfig::default()
    });
    assert_eq!(ex.scan(ScanKind::Sum, &a).unwrap(), want);
    let h = ex.health();
    assert_eq!(h.degraded_runs, 1, "{h:?}");

    let ex = ShardedExecutor::new(ShardConfig {
        shards: 1,
        min_live: 2,
        policy: RecoveryPolicy::Fail,
        ..ShardConfig::default()
    });
    assert_eq!(
        ex.scan(ScanKind::Sum, &a),
        Err(ShardError::Degraded { live: 1, need: 2 })
    );
}

/// The chaos schedule is a pure function of the plan and the job
/// counter: two executors with identical configs observe identical
/// histories.
#[test]
fn chaos_schedule_replays_identically() {
    let mk = || {
        ShardedExecutor::new(ShardConfig {
            watchdog: Duration::from_millis(25),
            ..cfg(
                3,
                ChaosPlan {
                    shard_kill_every: 7,
                    carry_corrupt_every: 5,
                    shard_delay_every: 3,
                    delay_us: 1,
                    ..ChaosPlan::quiet(23)
                },
            )
        })
    };
    let (ex1, ex2) = (mk(), mk());
    let a = data(600);
    for _ in 0..4 {
        let r1 = ex1.scan(ScanKind::Sum, &a);
        let r2 = ex2.scan(ScanKind::Sum, &a);
        assert_eq!(r1, r2);
        assert_eq!(r1.unwrap(), scan_core::scan::<Sum, _>(&a));
    }
    let (h1, h2) = (ex1.health(), ex2.health());
    assert_eq!(h1, h2, "replay must produce identical health");
    assert!(h1.losses >= 1);
}

/// Breaker states reported by `health()` are the real gate: a
/// quarantined shard shows `Open` and is skipped until its clock
/// comes up.
#[test]
fn health_reports_breaker_state() {
    let ex = ShardedExecutor::new(ShardConfig {
        breaker: BreakerConfig {
            failure_threshold: 1,
            base_quarantine: 1000,
            jitter: 0,
            ..BreakerConfig::default()
        },
        ..cfg(
            3,
            ChaosPlan {
                carry_corrupt_every: 2,
                ..ChaosPlan::quiet(29)
            },
        )
    });
    let a = data(90);
    let want = scan_core::scan::<Sum, _>(&a);
    for _ in 0..4 {
        assert_eq!(ex.scan(ScanKind::Sum, &a).unwrap(), want);
    }
    let h = ex.health();
    assert!(h.quarantined() >= 1, "{h:?}");
    assert!(h
        .shards
        .iter()
        .any(|s| matches!(s.state, BreakerState::Open { .. }) && s.skipped >= 1),
        "{h:?}");
}
