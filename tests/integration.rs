//! Cross-crate integration tests: pipelines that exercise several
//! crates together, and end-to-end consistency between the software
//! kernels, the step-counting machine, and the simulated hardware.

use blelloch_scan::algorithms::graph::reference::kruskal;
use blelloch_scan::algorithms::graph::{connected_components, minimum_spanning_tree};
use blelloch_scan::algorithms::merge::{halving_merge, seq_merge};
use blelloch_scan::algorithms::sort::{bitonic_sort, quicksort, split_radix_sort, PivotRule};
use blelloch_scan::circuit::CircuitBackend;
use blelloch_scan::core::op::{Max, Min, Sum};
use blelloch_scan::core::simulate::{self, PrimitiveScans};
use blelloch_scan::core::{scan, seg_scan, Segments};
use blelloch_scan::pram::{Ctx, Model};

fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 24
    }
}

/// All three sorts agree on random data.
#[test]
fn three_sorts_agree() {
    let mut r = rng(1);
    let keys: Vec<u64> = (0..2000).map(|_| r() % 100_000).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    assert_eq!(split_radix_sort(&keys, 17), expect);
    assert_eq!(quicksort(&keys, PivotRule::Random(7)), expect);
    assert_eq!(bitonic_sort(&keys), expect);
}

/// Sorting two halves and halving-merging them equals one big sort.
#[test]
fn sort_then_merge_pipeline() {
    let mut r = rng(2);
    let a: Vec<u64> = (0..500).map(|_| r() % 10_000).collect();
    let b: Vec<u64> = (0..700).map(|_| r() % 10_000).collect();
    let sa = split_radix_sort(&a, 14);
    let sb = quicksort(&b, PivotRule::First);
    let merged = halving_merge(&sa, &sb);
    let mut expect: Vec<u64> = a.iter().chain(&b).copied().collect();
    expect.sort_unstable();
    assert_eq!(merged, expect);
    assert_eq!(merged, seq_merge(&sa, &sb));
}

/// The graph pipeline: build → MST → components, against references.
#[test]
fn graph_pipeline() {
    let mut r = rng(3);
    let n = 60;
    let edges: Vec<(usize, usize, u64)> = (0..300)
        .filter_map(|_| {
            let u = (r() as usize) % n;
            let v = (r() as usize) % n;
            (u != v).then(|| (u, v, r() % 1000))
        })
        .collect();
    let mst = minimum_spanning_tree(n, &edges, 5);
    let (expect_edges, expect_weight) = kruskal(n, &edges);
    assert_eq!(mst.edges, expect_edges);
    assert_eq!(mst.total_weight, expect_weight);
    // Components of the MST edges equal components of the full graph.
    let mst_edges: Vec<(usize, usize, u64)> =
        mst.edges.iter().map(|&e| edges[e]).collect();
    assert_eq!(
        connected_components(n, &mst_edges, 8),
        connected_components(n, &edges, 9)
    );
}

/// The §3.4 simulation layer produces identical results whether the two
/// primitives run in software or on the cycle-accurate circuit.
#[test]
fn simulation_layer_on_hardware_backend() {
    let mut r = rng(4);
    let a: Vec<u64> = (0..100).map(|_| r() % 50_000).collect();
    let sw = simulate::SoftwareScans;
    let hw = CircuitBackend::new(64);
    assert_eq!(sw.plus_scan(&a), hw.plus_scan(&a));
    assert_eq!(sw.max_scan(&a), hw.max_scan(&a));
    assert_eq!(
        simulate::min_scan_u64(&sw, &a),
        simulate::min_scan_u64(&hw, &a)
    );
    let f: Vec<f64> = a.iter().map(|&x| x as f64 - 25_000.0).collect();
    assert_eq!(
        simulate::max_scan_f64(&sw, &f),
        simulate::max_scan_f64(&hw, &f)
    );
    let flags: Vec<bool> = a.iter().map(|&x| x % 5 == 0).collect();
    let segs = Segments::from_flags(flags);
    assert_eq!(
        simulate::seg_plus_scan_via_primitives(&sw, &a, &segs, 32).unwrap(),
        simulate::seg_plus_scan_via_primitives(&hw, &a, &segs, 32).unwrap()
    );
    assert!(hw.cycles() > 0, "the hardware actually ran");
}

/// Results are identical across every machine model; only the step
/// counts differ, and in the documented direction.
#[test]
fn models_agree_on_results_and_differ_on_steps() {
    let mut r = rng(5);
    let keys: Vec<u64> = (0..1024).map(|_| r() % 4096).collect();
    let mut results = Vec::new();
    let mut steps = Vec::new();
    for model in [Model::Scan, Model::Erew, Model::Crew, Model::Crcw] {
        let mut ctx = Ctx::new(model);
        results.push(
            blelloch_scan::algorithms::sort::radix::split_radix_sort_ctx(&mut ctx, &keys, 12),
        );
        steps.push(ctx.steps());
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    // Scan model strictly cheaper than EREW; EREW == CREW here (no
    // concurrent reads used by the radix sort).
    assert!(steps[0] < steps[1]);
    assert_eq!(steps[1], steps[2]);
}

/// The Table 1 shape: the EREW/Scan step ratio of a scan-heavy
/// algorithm grows like lg n.
#[test]
fn erew_to_scan_ratio_grows_logarithmically() {
    let ratio = |lg_n: u32| {
        let n = 1usize << lg_n;
        let keys: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % n as u64).collect();
        let mut scan_ctx = Ctx::new(Model::Scan);
        blelloch_scan::algorithms::sort::radix::split_radix_sort_ctx(
            &mut scan_ctx,
            &keys,
            lg_n,
        );
        let mut erew_ctx = Ctx::new(Model::Erew);
        blelloch_scan::algorithms::sort::radix::split_radix_sort_ctx(
            &mut erew_ctx,
            &keys,
            lg_n,
        );
        erew_ctx.steps() as f64 / scan_ctx.steps() as f64
    };
    let r10 = ratio(10);
    let r16 = ratio(16);
    assert!(r16 > r10, "ratio must grow with n: {r10:.2} vs {r16:.2}");
    assert!(r10 > 1.5, "EREW pays the tree cost: {r10:.2}");
}

/// Segmented scans distribute over concatenation: scanning the
/// concatenation of independent vectors with segment flags equals
/// scanning each separately — across all five operators.
#[test]
fn segmented_scan_concatenation_property() {
    let mut r = rng(6);
    let parts: Vec<Vec<u64>> = (0..5)
        .map(|_| (0..(r() % 50)).map(|_| r() % 1000).collect())
        .collect();
    let lens: Vec<usize> = parts.iter().map(Vec::len).collect();
    let flat: Vec<u64> = parts.iter().flatten().copied().collect();
    let segs = Segments::from_lengths(&lens);
    let seg_result = seg_scan::<Sum, _>(&flat, &segs);
    let mut expect = Vec::new();
    for p in &parts {
        expect.extend(scan::<Sum, _>(p));
    }
    assert_eq!(seg_result, expect);
    let seg_max = seg_scan::<Max, _>(&flat, &segs);
    let mut expect_max = Vec::new();
    for p in &parts {
        expect_max.extend(scan::<Max, _>(p));
    }
    assert_eq!(seg_max, expect_max);
    let seg_min = seg_scan::<Min, _>(&flat, &segs);
    let mut expect_min = Vec::new();
    for p in &parts {
        expect_min.extend(scan::<Min, _>(p));
    }
    assert_eq!(seg_min, expect_min);
}

/// Failure injection: the strict EREW machine rejects concurrent reads,
/// permute rejects collisions, the circuit rejects out-of-range fields.
#[test]
fn guard_rails() {
    use blelloch_scan::core::ops::try_permute;
    use blelloch_scan::core::Error;
    assert!(matches!(
        try_permute(&[1u32, 2, 3], &[0, 0, 1]),
        Err(Error::DuplicateIndex { .. })
    ));
    assert!(matches!(
        try_permute(&[1u32, 2], &[0, 9]),
        Err(Error::IndexOutOfBounds { .. })
    ));
    let res = std::panic::catch_unwind(|| {
        let mut ctx = Ctx::new(Model::Erew).strict();
        ctx.gather(&[1u32, 2], &[0, 0]);
    });
    assert!(res.is_err(), "strict EREW must reject the concurrent read");
    let res = std::panic::catch_unwind(|| {
        let mut c = blelloch_scan::circuit::TreeScanCircuit::new(2);
        c.scan(blelloch_scan::circuit::OpKind::Plus, &[999, 0], 8);
    });
    assert!(res.is_err(), "oversized field value must be rejected");
}
