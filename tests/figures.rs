//! Reproduction of every worked example (Figures 1–16) in the paper,
//! asserting the exact vectors the paper prints. The per-experiment
//! index in DESIGN.md maps each test to its figure.

use blelloch_scan::algorithms::graph::{star_merge, SegGraph};
use blelloch_scan::algorithms::merge::{halving_merge, halving_merge_ctx};
use blelloch_scan::algorithms::sort::radix::split_radix_sort;
use blelloch_scan::circuit::{tree_scan_trace, OpKind, TreeScanCircuit};
use blelloch_scan::core::op::{Max, Min, Sum};
use blelloch_scan::core::ops;
use blelloch_scan::core::simulate::{self, SoftwareScans};
use blelloch_scan::core::{
    allocate, distribute, inclusive_scan_backward, scan, scan_backward, seg_scan, Segments,
};
use blelloch_scan::pram::{BlockedVec, Ctx, Model};

const T: bool = true;
const F: bool = false;

/// §2.1: the elementwise-sum and +-scan examples.
#[test]
fn section2_1_examples() {
    let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
    let b = [2u32, 5, 3, 8, 1, 3, 6, 2];
    let c: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    assert_eq!(c, vec![7, 6, 6, 12, 4, 12, 8, 8]);
    assert_eq!(
        scan::<Sum, _>(&[2u32, 1, 2, 3, 5, 8, 13, 21]),
        vec![0, 2, 3, 5, 8, 13, 21, 34]
    );
    // permute example
    let names = [0u32, 1, 2, 3, 4, 5, 6, 7];
    let idx = [2, 5, 4, 3, 1, 6, 0, 7];
    assert_eq!(ops::permute(&names, &idx), vec![6, 4, 0, 3, 2, 1, 5, 7]);
}

/// Figure 1: enumerate, copy, +-distribute.
#[test]
fn figure01_simple_operations() {
    let flag = [T, F, F, T, F, T, T, F];
    assert_eq!(ops::enumerate(&flag), vec![0, 1, 1, 1, 2, 2, 3, 4]);
    let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
    assert_eq!(ops::copy_first(&a), vec![5; 8]);
    let b = [1u32, 1, 2, 1, 1, 2, 1, 1];
    assert_eq!(ops::distribute_op::<Sum, _>(&b), vec![10; 8]);
}

/// Figure 2: the split radix sort trace on [5 7 3 1 4 2 7 2].
#[test]
fn figure02_split_radix_sort() {
    let a = [5u64, 7, 3, 1, 4, 2, 7, 2];
    let bit = |v: &[u64], i: u32| -> Vec<bool> { v.iter().map(|&k| (k >> i) & 1 == 1).collect() };
    assert_eq!(bit(&a, 0), vec![T, T, T, T, F, F, T, F]);
    let s1 = ops::split(&a, &bit(&a, 0));
    assert_eq!(s1, vec![4, 2, 2, 5, 7, 3, 1, 7]);
    let s2 = ops::split(&s1, &bit(&s1, 1));
    assert_eq!(s2, vec![4, 5, 1, 2, 2, 7, 3, 7]);
    let s3 = ops::split(&s2, &bit(&s2, 2));
    assert_eq!(s3, vec![1, 2, 2, 3, 4, 5, 7, 7]);
    assert_eq!(split_radix_sort(&a, 3), s3);
}

/// Figure 3: the split operation's index arithmetic.
#[test]
fn figure03_split() {
    let a = [5u32, 7, 3, 1, 4, 2, 7, 2];
    let flags = [T, T, T, T, F, F, T, F];
    let i_down = ops::enumerate(&flags.map(|f| !f));
    assert_eq!(i_down, vec![0, 0, 0, 0, 0, 1, 2, 2]);
    // I-up = n − back-enumerate(Flags) − 1
    let back = ops::back_enumerate(&flags);
    let i_up: Vec<usize> = back.iter().map(|&b| 8 - b - 1).collect();
    assert_eq!(i_up, vec![3, 4, 5, 6, 6, 6, 7, 7]);
    assert_eq!(ops::split_index(&flags), vec![3, 4, 5, 6, 0, 1, 7, 2]);
    assert_eq!(ops::split(&a, &flags), vec![4, 2, 2, 5, 7, 3, 1, 7]);
}

/// Figure 4: segmented +-scan and max-scan.
#[test]
fn figure04_segmented_scans() {
    let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
    let sb = Segments::from_flags(vec![T, F, T, F, F, F, T, F]);
    assert_eq!(seg_scan::<Sum, _>(&a, &sb), vec![0, 5, 0, 3, 7, 10, 0, 2]);
    assert_eq!(seg_scan::<Max, _>(&a, &sb), vec![0, 5, 0, 3, 4, 4, 0, 2]);
}

/// Figure 5: one quicksort round (keys ×10 to stay integral).
#[test]
fn figure05_quicksort_round() {
    use blelloch_scan::core::ops::Bucket;
    let keys = [64u64, 92, 34, 16, 87, 41, 92, 34];
    let segs = Segments::from_flags(vec![T, F, F, F, F, F, F, F]);
    let mut ctx = Ctx::new(Model::Scan);
    let pivots = ctx.seg_copy(&keys, &segs);
    assert_eq!(pivots, vec![64; 8]);
    let buckets: Vec<Bucket> = keys
        .iter()
        .zip(&pivots)
        .map(|(&k, &p)| {
            if k < p {
                Bucket::Lo
            } else if k == p {
                Bucket::Mid
            } else {
                Bucket::Hi
            }
        })
        .collect();
    let r = ctx.seg_split3(&keys, &buckets, &segs);
    // Key ← split(Key, F) = [3.4 1.6 4.1 3.4 6.4 9.2 8.7 9.2]
    assert_eq!(r.values, vec![34, 16, 41, 34, 64, 92, 87, 92]);
    // Segment-Flags = [T F F F T T F F]
    assert_eq!(r.segments.flags(), &[T, F, F, F, T, T, F, F]);
}

/// Figure 6: the segmented graph representation of the example graph.
#[test]
fn figure06_graph_representation() {
    let g = SegGraph::figure6();
    assert_eq!(g.vertex_of_slot, vec![0, 1, 1, 1, 2, 2, 2, 3, 3, 4, 4, 4]);
    assert_eq!(
        g.segments().flags(),
        &[T, T, F, F, T, F, F, T, F, T, F, F]
    );
    assert_eq!(g.cross_pointers, vec![1, 0, 4, 9, 2, 7, 10, 5, 11, 3, 6, 8]);
    assert_eq!(g.weights, vec![1, 1, 2, 3, 2, 4, 5, 4, 6, 3, 5, 6]);
}

/// Figure 7: star-merging the example graph's single star.
#[test]
fn figure07_star_merge() {
    let g = SegGraph::figure6();
    let star = vec![F, F, T, F, T, T, F, T, F, F, F, F];
    let parent = vec![T, F, T, F, T];
    let mut ctx = Ctx::new(Model::Scan);
    let r = star_merge(&mut ctx, &g, &star, &parent);
    assert_eq!(r.graph.n_vertices, 3);
    assert_eq!(r.graph.n_slots(), 8);
    assert_eq!(r.graph.segments().flags(), &[T, T, F, F, F, T, F, F]);
    // Per-segment weight multisets match the paper's
    // [w1 | w1 w3 w5 w6 | w3 w5 w6].
    let per_segment: Vec<Vec<u64>> = r
        .graph
        .segments()
        .ranges()
        .iter()
        .map(|&(s, e)| {
            let mut w = r.graph.weights[s..e].to_vec();
            w.sort_unstable();
            w
        })
        .collect();
    assert_eq!(per_segment, vec![vec![1], vec![1, 3, 5, 6], vec![3, 5, 6]]);
    // The new cross-pointers must still be a clean involution.
    r.graph.validate();
}

/// Figure 8: processor allocation.
#[test]
fn figure08_allocation() {
    let alloc = allocate(&[4, 1, 3]);
    assert_eq!(alloc.starts, vec![0, 4, 5]); // Hpointers ← +-scan(A)
    assert_eq!(
        alloc.segments.flags(),
        &[T, F, F, F, T, T, F, F]
    );
    assert_eq!(
        distribute(&[1u32, 2, 3], &[4, 1, 3]),
        vec![1, 1, 1, 1, 2, 3, 3, 3]
    );
}

/// Figure 9: the three example lines. The paper allocates
/// max(|Δx|,|Δy|) processors (12, 11, 15) and reports 12, 11, 16
/// pixels; drawing both endpoints (the cited DDA's output) yields
/// 13, 12 and 16 grid points.
#[test]
fn figure09_line_drawing() {
    use blelloch_scan::algorithms::geometry::draw_lines;
    let lines = [
        ((11, 2), (23, 14)),
        ((2, 13), (13, 8)),
        ((16, 4), (31, 4)),
    ];
    let pixels = draw_lines(&lines);
    let counts: Vec<usize> = (0..3)
        .map(|l| pixels.iter().filter(|p| p.line == l).count())
        .collect();
    assert_eq!(counts, vec![13, 12, 16]);
    // Endpoints are hit exactly.
    for (l, &((x0, y0), (x1, y1))) in lines.iter().enumerate() {
        let of_line: Vec<(i64, i64)> = pixels
            .iter()
            .filter(|p| p.line == l)
            .map(|p| (p.x, p.y))
            .collect();
        assert_eq!(of_line.first(), Some(&(x0, y0)));
        assert_eq!(of_line.last(), Some(&(x1, y1)));
    }
    // The third line is horizontal: all 16 pixels at y = 4.
    assert!(pixels
        .iter()
        .filter(|p| p.line == 2)
        .all(|p| p.y == 4 && (16..=31).contains(&p.x)));
}

/// Figure 10: the long-vector scan on 4 processors.
#[test]
fn figure10_long_vector_scan() {
    let v = BlockedVec::new(vec![4u64, 7, 1, 0, 5, 2, 6, 4, 8, 1, 9, 5], 4);
    assert_eq!(v.block_sums::<Sum>(), vec![12, 7, 18, 15]);
    assert_eq!(scan::<Sum, _>(&v.block_sums::<Sum>()), vec![0, 12, 19, 37]);
    assert_eq!(
        v.scan::<Sum>().data(),
        &[0, 4, 11, 12, 12, 17, 19, 25, 29, 37, 38, 47]
    );
}

/// Figure 11: load balancing.
#[test]
fn figure11_load_balancing() {
    let keep = [T, F, F, F, T, T, F, T, T, T, T, T];
    let a: Vec<u32> = (0..12).collect();
    let v = BlockedVec::new(a, 4);
    let balanced = v.load_balance(&keep);
    assert_eq!(balanced.data(), &[0, 4, 5, 7, 8, 9, 10, 11]);
    assert_eq!(balanced.max_block_len(), 2);
}

/// Figure 12: the halving merge trace.
#[test]
fn figure12_halving_merge() {
    let a = [1u64, 7, 10, 13, 15, 20];
    let b = [3u64, 4, 9, 22, 23, 26];
    // The recursive halves and their merge:
    let a0: Vec<u64> = a.iter().step_by(2).copied().collect();
    let b0: Vec<u64> = b.iter().step_by(2).copied().collect();
    assert_eq!(a0, vec![1, 10, 15]);
    assert_eq!(b0, vec![3, 9, 23]);
    assert_eq!(halving_merge(&a0, &b0), vec![1, 3, 9, 10, 15, 23]);
    // The inner flags the paper prints: [F T T F F T].
    let mut ctx = Ctx::new(Model::Scan);
    let flags = blelloch_scan::algorithms::merge::halving_merge_flags(&mut ctx, &a0, &b0);
    assert_eq!(flags, vec![F, T, T, F, F, T]);
    // And the full result.
    let mut ctx = Ctx::new(Model::Scan);
    assert_eq!(
        halving_merge_ctx(&mut ctx, &a, &b),
        vec![1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26]
    );
}

/// §2.5.1's x-near-merge: the rotation repair on the printed
/// near-merge vector.
#[test]
fn section2_5_near_merge_repair() {
    let near = [1u64, 7, 3, 4, 9, 22, 10, 13, 15, 20, 23, 26];
    // head-copy ← max(max-scan(near-merge), near-merge)
    let ms = scan::<Max, _>(&near);
    let head_copy: Vec<u64> = ms.iter().zip(&near).map(|(&h, &x)| h.max(x)).collect();
    // result ← min(min-backscan(near-merge), head-copy)
    let mb = scan_backward::<Min, _>(&near);
    let result: Vec<u64> = mb.iter().zip(&head_copy).map(|(&m, &h)| m.min(h)).collect();
    assert_eq!(result, vec![1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26]);
}

/// Figure 13: the word-level tree scan and its bit-pipelined circuit
/// agree, with the paper's step and cycle counts.
#[test]
fn figure13_tree_scan() {
    let values = [5u64, 1, 3, 4, 3, 9, 2, 6];
    let trace = tree_scan_trace(OpKind::Plus, &values, 8);
    assert_eq!(trace.steps, 6, "2 lg n word-level steps");
    assert_eq!(trace.result, scan::<Sum, _>(&values));
    let mut circuit = TreeScanCircuit::new(8);
    let run = circuit.scan(OpKind::Plus, &values, 8);
    assert_eq!(run.values, trace.result);
    assert_eq!(run.cycles, 8 + 2 * 3 - 1, "m + 2 lg n − 1 bit cycles");
}

/// Figures 14/15: the unit's state machines execute serial addition and
/// serial maximum exactly (exhaustive for 8-bit operands).
#[test]
fn figure14_15_sum_state_machine() {
    use blelloch_scan::circuit::SumStateMachine;
    for a in 0..=255u64 {
        for b in 0..=255u64 {
            let mut plus = SumStateMachine::new();
            let mut sum = 0u64;
            for k in 0..8 {
                let s = plus.step(OpKind::Plus, (a >> k) & 1 == 1, (b >> k) & 1 == 1);
                sum |= (s as u64) << k;
            }
            assert_eq!(sum, (a + b) & 0xFF);
            let mut max = SumStateMachine::new();
            let mut m = 0u64;
            for k in (0..8).rev() {
                let s = max.step(OpKind::Max, (a >> k) & 1 == 1, (b >> k) & 1 == 1);
                m |= (s as u64) << k;
            }
            assert_eq!(m, a.max(b));
        }
    }
}

/// Figure 16: the segmented max-scan built from the two unsegmented
/// primitives.
#[test]
fn figure16_segmented_from_primitives() {
    let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
    let segs = Segments::from_flags(vec![T, F, T, F, F, F, T, F]);
    let got = simulate::seg_max_scan_via_primitives(&SoftwareScans, &a, &segs, 8).unwrap();
    assert_eq!(got, vec![0, 5, 0, 3, 4, 4, 0, 2]);
}

/// §3.4: backward scans "implemented by simply reading the vector into
/// the processors in reverse order".
#[test]
fn section3_4_backward_scans() {
    let a = [2u64, 8, 3, 5];
    assert_eq!(scan_backward::<Sum, _>(&a), vec![16, 8, 5, 0]);
    assert_eq!(inclusive_scan_backward::<Max, _>(&a), vec![8, 8, 5, 5]);
}
