//! The Table 1 shape, asserted end-to-end: for each scan-heavy
//! algorithm family the EREW/Scan step ratio must grow with n, while
//! the scan-free control stays flat. This is the claim of the paper in
//! executable form.

use blelloch_scan::pram::{Ctx, Model};

fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 24
    }
}

fn connected_graph(n: usize, extra: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut r = rng(seed);
    let mut edges: Vec<(usize, usize, u64)> = (1..n).map(|v| (v - 1, v, 0)).collect();
    for e in edges.iter_mut() {
        e.2 = r() % 1000;
    }
    for _ in 0..extra {
        let u = (r() as usize) % n;
        let v = (r() as usize) % n;
        if u != v {
            edges.push((u, v, r() % 1000));
        }
    }
    edges
}

/// EREW/Scan step ratio of `run` at problem size `n`.
fn ratio(n: usize, run: impl Fn(&mut Ctx, usize)) -> f64 {
    let mut erew = Ctx::new(Model::Erew);
    run(&mut erew, n);
    let mut scan = Ctx::new(Model::Scan);
    run(&mut scan, n);
    erew.steps() as f64 / scan.steps().max(1) as f64
}

fn assert_ratio_grows(name: &str, run: impl Fn(&mut Ctx, usize) + Copy) {
    let small = ratio(1 << 9, run);
    let large = ratio(1 << 13, run);
    assert!(
        large > small && small > 1.2,
        "{name}: ratio must grow and exceed 1: {small:.2} → {large:.2}"
    );
}

#[test]
fn mst_gap_grows() {
    assert_ratio_grows("mst", |ctx, n| {
        let edges = connected_graph(n, 2 * n, 1);
        scan_algorithms::graph::mst::minimum_spanning_tree_ctx(ctx, n, &edges, 7);
    });
}

#[test]
fn components_gap_grows() {
    assert_ratio_grows("components", |ctx, n| {
        let edges = connected_graph(n, n, 2);
        scan_algorithms::graph::components::connected_components_ctx(ctx, n, &edges, 8);
    });
}

#[test]
fn biconnected_gap_grows() {
    assert_ratio_grows("biconnected", |ctx, n| {
        let edges = connected_graph(n, n, 3);
        scan_algorithms::graph::biconnected::biconnected_components_ctx(ctx, n, &edges, 9);
    });
}

#[test]
fn radix_sort_gap_grows() {
    assert_ratio_grows("radix", |ctx, n| {
        let mut r = rng(4);
        let keys: Vec<u64> = (0..n).map(|_| r() & 0xFFFF).collect();
        scan_algorithms::sort::radix::split_radix_sort_ctx(ctx, &keys, 16);
    });
}

#[test]
fn halving_merge_gap_grows() {
    assert_ratio_grows("halving merge", |ctx, n| {
        let mut r = rng(5);
        let mut a: Vec<u64> = (0..n / 2).map(|_| r() % 100_000).collect();
        let mut b: Vec<u64> = (0..n / 2).map(|_| r() % 100_000).collect();
        a.sort_unstable();
        b.sort_unstable();
        scan_algorithms::merge::halving::halving_merge_ctx(ctx, &a, &b);
    });
}

#[test]
fn line_drawing_is_constant_steps_on_scan_model() {
    let steps = |n_lines: usize| {
        let mut r = rng(6);
        let lines: Vec<((i64, i64), (i64, i64))> = (0..n_lines)
            .map(|_| {
                (
                    ((r() % 500) as i64, (r() % 500) as i64),
                    ((r() % 500) as i64, (r() % 500) as i64),
                )
            })
            .collect();
        let mut ctx = Ctx::new(Model::Scan);
        scan_algorithms::geometry::line_draw::draw_lines_ctx(&mut ctx, &lines);
        ctx.steps()
    };
    assert_eq!(steps(16), steps(2048), "O(1) scan-model steps");
}

#[test]
fn bitonic_control_is_model_independent() {
    // The scan-free control: identical steps under both models, at
    // every size.
    for lg in [8u32, 11] {
        let n = 1usize << lg;
        let mut r = rng(7);
        let keys: Vec<u64> = (0..n).map(|_| r()).collect();
        let mut erew = Ctx::new(Model::Erew);
        scan_algorithms::sort::bitonic::bitonic_sort_ctx(&mut erew, &keys);
        let mut scan = Ctx::new(Model::Scan);
        scan_algorithms::sort::bitonic::bitonic_sort_ctx(&mut scan, &keys);
        assert_eq!(erew.steps(), scan.steps());
    }
}

#[test]
fn crcw_combining_write_beats_scan_model_mst_constant() {
    // The extended-CRCW min-write of §2.3.3 exists and is unit-cost.
    let mut ctx = Ctx::new(Model::Crcw);
    let out =
        ctx.combining_write::<blelloch_scan::core::op::Min, u64>(4, &[0, 1, 0, 2], &[9, 3, 4, 7]);
    assert_eq!(out, vec![4, 3, 7, u64::MAX]);
    assert_eq!(ctx.steps(), 1);
}

#[test]
fn vm_programs_charge_like_direct_calls() {
    use blelloch_scan::pram::vm::{radix_pass_program, Vm};
    let mut r = rng(8);
    let keys: Vec<u64> = (0..512).map(|_| r() & 0xFF).collect();
    // Through the VM.
    let mut vm = Vm::new(Model::Scan);
    vm.load("keys", keys.clone());
    for bit in 0..8 {
        vm.run(&radix_pass_program(bit)).expect("program runs");
    }
    // Directly.
    let mut ctx = Ctx::new(Model::Scan);
    scan_algorithms::sort::radix::split_radix_sort_ctx(&mut ctx, &keys, 8);
    assert_eq!(
        vm.get("keys").map(<[u64]>::to_vec),
        Some(scan_algorithms::sort::radix::split_radix_sort(&keys, 8))
    );
    // Same instruction mix → step counts within a small factor.
    let (a, b) = (vm.steps() as f64, ctx.steps() as f64);
    assert!((a / b) < 1.5 && (b / a) < 1.5, "vm {a} vs direct {b}");
}
