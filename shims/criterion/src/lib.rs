//! Wall-clock stand-in for the `criterion` benchmark crate.
//!
//! Implements the subset of criterion's API the `scan-bench` harness
//! uses — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], [`Throughput`]
//! and `Bencher::iter` — measuring with `std::time::Instant` and
//! printing one line per benchmark (mean and best iteration time, plus
//! element throughput when declared). No statistics, plots, or
//! baselines; the point is that `cargo bench` runs hermetically and
//! yields honest relative numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, for ns/elem reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Mean wall time of one payload call over all timed iterations.
    mean: Duration,
    /// Fastest single sample (mean within that sample batch).
    best: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, mean: Duration::ZERO, best: Duration::MAX }
    }

    /// Time `f`, called repeatedly; the result is recorded on `self`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then `samples` timed batches. Batch size is
        // chosen so each batch runs at least ~2ms, bounding timer noise.
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed();
        let per_batch = if once >= Duration::from_millis(2) {
            1
        } else {
            let target = Duration::from_millis(2).as_nanos();
            (target / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize
        };
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            let batch = t.elapsed();
            let per_call = batch / per_batch as u32;
            best = best.min(per_call);
            total += batch;
        }
        self.mean = total / (self.samples * per_batch) as u32;
        self.best = best;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed sample batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finish the group (report-only shim: nothing to flush).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = b.mean;
        let tail = match self.throughput {
            Some(Throughput::Elements(n)) if n > 0 => {
                format!("  ({:.2} ns/elem)", mean.as_nanos() as f64 / n as f64)
            }
            Some(Throughput::Bytes(n)) if n > 0 => {
                format!("  ({:.2} ns/byte)", mean.as_nanos() as f64 / n as f64)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<48} mean {:>12?}  best {:>12?}{}",
            format!("{}/{}", self.name, id.id),
            mean,
            b.best,
            tail
        );
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut g = Criterion::default();
        let mut group = g.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
