//! Model-aware replacement for [`std::thread`] (the subset used by
//! the workspace: `Builder`, `spawn`, `JoinHandle`, `yield_now`).
//!
//! Inside [`crate::model`] spawned closures become *model threads*:
//! real OS threads serialized by the scheduler token, visible to the
//! interleaving search. Outside a model everything forwards to `std`.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::rt;

/// Result of joining a thread, as in [`std::thread::Result`].
pub type Result<T> = std::thread::Result<T>;

enum Inner<T> {
    Model {
        tid: usize,
        result: Arc<Mutex<Option<Result<T>>>>,
        os: std::thread::JoinHandle<()>,
    },
    Std(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (model or plain) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its closure's result.
    ///
    /// After a model failure this returns an `Err` payload instead of
    /// blocking, so teardown code (e.g. a pool `Drop` that joins its
    /// workers) can complete and let the driver report the diagnostic.
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Model { tid, result, os } => {
                match rt::ctx() {
                    Some((s, me)) => s.join_wait(me, tid),
                    // Joined from outside the model (e.g. by the
                    // driver after exploration): the OS thread is no
                    // longer scheduler-gated, join it directly.
                    None => {
                        let _ = os.join();
                    }
                }
                let taken = result.lock().unwrap_or_else(PoisonError::into_inner).take();
                match taken {
                    Some(r) => r,
                    None => Err(Box::new(
                        "loom-shim: thread result unavailable (model failure shutdown)",
                    )),
                }
            }
            Inner::Std(h) => h.join(),
        }
    }
}

/// Thread factory mirroring [`std::thread::Builder`].
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Create a builder with no name set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name the thread-to-be (names show up in panic messages).
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawn the closure, as a model thread when called inside
    /// [`crate::model`], as a plain `std` thread otherwise.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::ctx() {
            Some((sched, me)) => {
                let tid = sched.register_thread();
                let result: Arc<Mutex<Option<Result<T>>>> = Arc::new(Mutex::new(None));
                let r2 = Arc::clone(&result);
                let s2 = Arc::clone(&sched);
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                let os = b.spawn(move || {
                    rt::set_ctx(Arc::clone(&s2), tid);
                    // The catch also swallows the "halting after model
                    // failure" unwind, letting the thread park its
                    // result and exit cleanly while the driver reports.
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        s2.wait_for_token(tid);
                        f()
                    }));
                    *r2.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    s2.finish(tid);
                    rt::clear_ctx();
                })?;
                // The child is registered runnable; give the scheduler
                // a chance to switch to it right away.
                sched.point(me);
                Ok(JoinHandle(Inner::Model { tid, result, os }))
            }
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
        }
    }
}

/// As [`std::thread::spawn`], model-aware.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match Builder::new().spawn(f) {
        Ok(h) => h,
        Err(e) => panic!("failed to spawn thread: {e}"),
    }
}

/// A pure scheduling point inside a model; forwards to
/// [`std::thread::yield_now`] outside one.
pub fn yield_now() {
    match rt::ctx() {
        Some((sched, me)) => sched.yield_point(me),
        None => std::thread::yield_now(),
    }
}
