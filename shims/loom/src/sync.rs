//! Model-aware replacements for [`std::sync`] primitives (the subset
//! used by the workspace: `Arc`, `Mutex`, `Condvar`, atomics).
//!
//! Inside [`crate::model`] every operation is a scheduling choice
//! point; blocking goes through the scheduler so the interleaving
//! search sees it. Outside a model everything forwards to `std`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

use crate::rt;

pub use std::sync::{Arc, LockResult, TryLockError, TryLockResult};

/// Mutual exclusion, as [`std::sync::Mutex`] but model-aware.
///
/// Data lives in a real `std` mutex (uncontended inside a model: only
/// the token holder runs); blocking and contention are modeled in the
/// scheduler, keyed by the mutex's address. The address is a stable
/// identity because every registered waiter holds a `&self` borrow.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create an unlocked mutex. `const` so statics work.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn key(&self) -> rt::Key {
        self as *const Self as usize
    }

    /// Acquire the lock, blocking through the model scheduler.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match rt::ctx() {
            Some((sched, me)) => {
                sched.acquire(me, self.key());
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    modeled: true,
                    inner: Some(inner),
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    modeled: false,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    modeled: false,
                    inner: Some(p.into_inner()),
                })),
            },
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match rt::ctx() {
            Some((sched, me)) => {
                if sched.try_acquire(me, self.key()) {
                    let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: self,
                        modeled: true,
                        inner: Some(inner),
                    })
                } else {
                    Err(TryLockError::WouldBlock)
                }
            }
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    modeled: false,
                    inner: Some(g),
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        modeled: false,
                        inner: Some(p.into_inner()),
                    })))
                }
            },
        }
    }
}

/// RAII guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    modeled: bool,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T> MutexGuard<'a, T> {
    fn inner(&self) -> &std::sync::MutexGuard<'a, T> {
        match &self.inner {
            Some(g) => g,
            // The Option is only ever None mid-consumption inside
            // Condvar::wait, where the guard is owned by value.
            None => unreachable!("loom-shim: guard used after release"),
        }
    }

    fn inner_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("loom-shim: guard used after release"),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the modeled one: the next token
        // holder must be able to take `inner` without blocking the OS
        // thread. Releasing is not a choice point and cannot panic, so
        // it is safe during unwinding.
        self.inner = None;
        if self.modeled {
            if let Some((sched, me)) = rt::ctx() {
                sched.release(me, self.lock.key());
            }
        }
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because time ran out.
///
/// Defined locally ([`std::sync::WaitTimeoutResult`] cannot be
/// constructed outside `std`). In a model, "time ran out" means the
/// quiescence rule fired: no thread was runnable, so the timeout was
/// the only way forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable, as [`std::sync::Condvar`] but model-aware.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable. `const` so statics work.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn key(&self) -> rt::Key {
        self as *const Self as usize
    }

    /// Atomically release the guard and wait for a notification.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match rt::ctx() {
            Some(_) => {
                let (g, _) = self.model_wait(guard, true);
                Ok(g)
            }
            None => self.std_wait(guard),
        }
    }

    /// As [`Condvar::wait`] with a timeout. Inside a model the timeout
    /// "fires" only when no other thread can make progress.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match rt::ctx() {
            Some(_) => {
                let (g, timed_out) = self.model_wait(guard, false);
                Ok((g, WaitTimeoutResult { timed_out }))
            }
            None => {
                let lock = guard.lock;
                let mut guard = guard;
                let inner = match guard.inner.take() {
                    Some(g) => g,
                    None => unreachable!("loom-shim: guard used after release"),
                };
                std::mem::forget(guard);
                let (inner, res) = match self.inner.wait_timeout(inner, dur) {
                    Ok((g, r)) => (g, r),
                    Err(p) => p.into_inner(),
                };
                Ok((
                    MutexGuard {
                        lock,
                        modeled: false,
                        inner: Some(inner),
                    },
                    WaitTimeoutResult {
                        timed_out: res.timed_out(),
                    },
                ))
            }
        }
    }

    /// Model-mode wait: dissolve the guard, park through the
    /// scheduler, re-acquire, rebuild the guard. Returns the rebuilt
    /// guard and whether the wake was a (modeled) timeout.
    fn model_wait<'a, T>(&self, guard: MutexGuard<'a, T>, forever: bool) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        let mutex_key = lock.key();
        let mut guard = guard;
        // Drop the real lock by hand, then tell the scheduler; the
        // forget skips the guard's Drop (which would double-release).
        guard.inner = None;
        std::mem::forget(guard);
        let timed_out = match rt::ctx() {
            Some((sched, me)) => {
                let t = sched.cv_wait(me, self.key(), mutex_key, !forever);
                sched.acquire(me, mutex_key);
                t
            }
            None => unreachable!("loom-shim: model_wait outside a model"),
        };
        let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard {
                lock,
                modeled: true,
                inner: Some(inner),
            },
            timed_out,
        )
    }

    fn std_wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let mut guard = guard;
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("loom-shim: guard used after release"),
        };
        std::mem::forget(guard);
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Ok(MutexGuard {
            lock,
            modeled: false,
            inner: Some(inner),
        })
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        match rt::ctx() {
            Some((sched, me)) => sched.notify(me, self.key(), false),
            None => self.inner.notify_one(),
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        match rt::ctx() {
            Some((sched, me)) => sched.notify(me, self.key(), true),
            None => self.inner.notify_all(),
        }
    }
}

/// Model-aware atomics: each access is a scheduling choice point.
///
/// Orderings are accepted for API compatibility but the model is
/// sequentially consistent (one thread runs at a time and the token
/// hand-off orders everything).
pub mod atomic {
    use crate::rt;

    pub use std::sync::atomic::Ordering;

    fn point() {
        if let Some((sched, me)) = rt::ctx() {
            sched.point(me);
        }
    }

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$name,
            }

            impl $name {
                /// Create a new atomic. `const` so statics work.
                pub const fn new(v: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$name::new(v),
                    }
                }

                /// Model-aware load.
                pub fn load(&self, o: Ordering) -> $ty {
                    point();
                    self.inner.load(o)
                }

                /// Model-aware store.
                pub fn store(&self, v: $ty, o: Ordering) {
                    point();
                    self.inner.store(v, o)
                }

                /// Model-aware swap.
                pub fn swap(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.swap(v, o)
                }

                /// Model-aware fetch-add.
                pub fn fetch_add(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.fetch_add(v, o)
                }

                /// Model-aware fetch-sub.
                pub fn fetch_sub(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.fetch_sub(v, o)
                }

                /// Model-aware fetch-min.
                pub fn fetch_min(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.fetch_min(v, o)
                }

                /// Model-aware fetch-max.
                pub fn fetch_max(&self, v: $ty, o: Ordering) -> $ty {
                    point();
                    self.inner.fetch_max(v, o)
                }

                /// Model-aware compare-exchange.
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    s: Ordering,
                    f: Ordering,
                ) -> Result<$ty, $ty> {
                    point();
                    self.inner.compare_exchange(cur, new, s, f)
                }

                /// Model-aware compare-exchange; never fails spuriously
                /// here (strengthening is allowed by the contract).
                pub fn compare_exchange_weak(
                    &self,
                    cur: $ty,
                    new: $ty,
                    s: Ordering,
                    f: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(cur, new, s, f)
                }

                /// Consume the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(
        /// Model-aware [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Model-aware [`std::sync::atomic::AtomicU8`].
        AtomicU8,
        u8
    );
    int_atomic!(
        /// Model-aware [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        u32
    );
    int_atomic!(
        /// Model-aware [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        u64
    );

    /// Model-aware [`std::sync::atomic::AtomicBool`].
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic bool. `const` so statics work.
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Model-aware load.
        pub fn load(&self, o: Ordering) -> bool {
            point();
            self.inner.load(o)
        }

        /// Model-aware store.
        pub fn store(&self, v: bool, o: Ordering) {
            point();
            self.inner.store(v, o)
        }

        /// Model-aware swap.
        pub fn swap(&self, v: bool, o: Ordering) -> bool {
            point();
            self.inner.swap(v, o)
        }

        /// Model-aware fetch-or.
        pub fn fetch_or(&self, v: bool, o: Ordering) -> bool {
            point();
            self.inner.fetch_or(v, o)
        }

        /// Model-aware fetch-and.
        pub fn fetch_and(&self, v: bool, o: Ordering) -> bool {
            point();
            self.inner.fetch_and(v, o)
        }

        /// Model-aware compare-exchange.
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            s: Ordering,
            f: Ordering,
        ) -> Result<bool, bool> {
            point();
            self.inner.compare_exchange(cur, new, s, f)
        }

        /// Model-aware compare-exchange (never spuriously fails).
        pub fn compare_exchange_weak(
            &self,
            cur: bool,
            new: bool,
            s: Ordering,
            f: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(cur, new, s, f)
        }

        /// Consume the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }
}
