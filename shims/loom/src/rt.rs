//! The exploration runtime: a cooperative scheduler over real OS
//! threads, plus a depth-first search over scheduling choice points.
//!
//! ## How exploration works
//!
//! Inside [`crate::model`] exactly one *model thread* runs at a time;
//! every instrumented operation (atomic access, mutex acquire, condvar
//! wait/notify, spawn, join, yield) is a **choice point** where the
//! scheduler decides which runnable thread executes next. One execution
//! of the model closure therefore corresponds to one *schedule*: the
//! sequence of decisions taken at each choice point.
//!
//! The driver records that sequence (the *trace*) and then backtracks:
//! it finds the deepest decision with an unexplored alternative, forces
//! that prefix on the next execution, and lets the default policy
//! (*stay on the current thread*) complete the schedule. This is a
//! depth-first enumeration of the schedule tree.
//!
//! ## Bounding
//!
//! Full enumeration is exponential, so exploration is **preemption
//! bounded** (CHESS-style): an alternative that switches away from a
//! thread that could have continued costs one preemption, and schedules
//! with more than [`max_preemptions`](Scheduler) of them are skipped.
//! Context-bounded search with 2–3 preemptions is known to reach the
//! overwhelming majority of real concurrency bugs while keeping the
//! tree polynomial. Voluntary switches (blocking on a lock, a condvar
//! wait, thread exit) are free. `LOOM_MAX_PREEMPTIONS` overrides the
//! bound; `LOOM_MAX_BRANCHES` caps the number of executions.
//!
//! ## Modeling choices (differences from real loom)
//!
//! - Memory is sequentially consistent: orderings are accepted and
//!   ignored. The checker explores *interleavings*, not weak-memory
//!   reorderings.
//! - Condvar waits have no spurious wakeups; a **timed** wait only
//!   "times out" when the model would otherwise be deadlocked (the
//!   quiescence rule). This models "the timeout eventually fires"
//!   without exploding the schedule tree.
//! - A deadlock (every thread blocked, no timed waiter to wake) fails
//!   the model with a diagnostic.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Identity of a sync object: its address for as long as it is
/// borrowed by a waiter (objects with registered state are pinned by
/// the `&self` borrows of the threads blocked on them).
pub(crate) type Key = usize;

pub(crate) const DEFAULT_MAX_PREEMPTIONS: usize = 2;
pub(crate) const DEFAULT_MAX_EXECUTIONS: usize = 20_000;
/// Hard per-execution step bound: hitting it means a livelock.
const MAX_STEPS: usize = 200_000;

/// Run state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    /// Blocked acquiring the mutex with this key.
    Lock(Key),
    /// Blocked in a condvar wait (`timed` = `wait_timeout`).
    Cv {
        cv: Key,
        timed: bool,
    },
    /// Blocked joining the thread with this id.
    Join(usize),
    Finished,
}

struct Th {
    run: Run,
    /// Set when a timed condvar wait was woken by the quiescence rule
    /// rather than by a notify.
    timed_out: bool,
}

/// One scheduling decision: which thread (among the enabled ones) got
/// the token, taken by which thread, and whether that thread could
/// have continued (for preemption accounting).
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    enabled: Vec<usize>,
    chosen_pos: usize,
    me: usize,
    me_enabled: bool,
}

impl Decision {
    fn preempting(&self) -> bool {
        self.me_enabled && self.enabled[self.chosen_pos] != self.me
    }
}

struct State {
    threads: Vec<Th>,
    /// The thread currently holding the execution token.
    active: usize,
    /// Mutex hold state, keyed by address.
    locks: HashMap<Key, bool>,
    /// Decisions taken so far in this execution.
    trace: Vec<Decision>,
    /// Decision prefix (as positions into each enabled set) replayed
    /// from the previous execution during backtracking.
    forced: Vec<usize>,
    steps: usize,
    failure: Option<String>,
}

impl State {
    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.run == Run::Finished)
    }
}

/// Shared scheduler for one execution of the model closure.
pub(crate) struct Scheduler {
    st: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// The scheduler + thread id of the current model thread, if any.
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(sched: Arc<Scheduler>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn lock_state(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    fn new(forced: Vec<usize>) -> Self {
        Scheduler {
            st: Mutex::new(State {
                threads: Vec::new(),
                active: 0,
                locks: HashMap::new(),
                trace: Vec::new(),
                forced,
                steps: 0,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a new model thread; returns its id. The thread starts
    /// Runnable but does not run until the scheduler grants it the
    /// token.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock_state(&self.st);
        st.threads.push(Th {
            run: Run::Runnable,
            timed_out: false,
        });
        st.threads.len() - 1
    }

    /// Record a failure, wake every parked thread so the execution can
    /// shut down, and leave the diagnostic for the driver.
    fn fail(&self, st: &mut MutexGuard<'_, State>, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.cv.notify_all();
    }

    /// Pick the next thread at a choice point and record the decision.
    /// Returns the chosen thread, or `None` on failure (the caller
    /// must panic out of the model).
    fn decide(&self, st: &mut MutexGuard<'_, State>, me: usize) -> Option<usize> {
        self.decide_at(st, me, false)
    }

    fn decide_at(
        &self,
        st: &mut MutexGuard<'_, State>,
        me: usize,
        yielding: bool,
    ) -> Option<usize> {
        st.steps += 1;
        if st.steps > MAX_STEPS {
            self.fail(
                st,
                format!("livelock: exceeded {MAX_STEPS} scheduling steps"),
            );
            return None;
        }
        let mut enabled = st.enabled();
        if yielding && enabled.len() > 1 {
            // A yielding thread volunteers the token: hand it to some
            // other runnable thread. Staying put would be a pure
            // stutter (no other thread ran, so the yielder's re-reads
            // observe identical state), so that branch is redundant;
            // dropping `me` also makes the switch preemption-free.
            enabled.retain(|&t| t != me);
        }
        if enabled.is_empty() {
            // Quiescence rule: with nothing runnable, a timed condvar
            // wait is allowed to "time out". Wake the first one.
            if let Some(t) = st
                .threads
                .iter()
                .position(|t| matches!(t.run, Run::Cv { timed: true, .. }))
            {
                st.threads[t].run = Run::Runnable;
                st.threads[t].timed_out = true;
                enabled = vec![t];
            } else {
                let snapshot: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("thread {i}: {:?}", t.run))
                    .collect();
                self.fail(
                    st,
                    format!(
                        "deadlock: every thread is blocked\n  {}",
                        snapshot.join("\n  ")
                    ),
                );
                return None;
            }
        }
        let me_enabled = enabled.contains(&me);
        let pos = if st.trace.len() < st.forced.len() {
            // Replay: executions are deterministic given the decision
            // sequence, so the enabled set matches the recorded run;
            // clamp defensively anyway.
            st.forced[st.trace.len()].min(enabled.len() - 1)
        } else {
            // Default policy: stay on the current thread when possible
            // (zero preemptions), else run the lowest-id enabled one.
            enabled.iter().position(|&t| t == me).unwrap_or(0)
        };
        let chosen = enabled[pos];
        st.trace.push(Decision {
            enabled,
            chosen_pos: pos,
            me,
            me_enabled,
        });
        Some(chosen)
    }

    /// Hand the token to `chosen` and, unless this thread is done for
    /// good, wait until the token comes back.
    fn transfer(&self, mut st: MutexGuard<'_, State>, me: usize, chosen: usize, wait_back: bool) {
        st.active = chosen;
        if chosen == me {
            return;
        }
        self.cv.notify_all();
        if !wait_back {
            return;
        }
        while !(st.active == me && st.threads[me].run == Run::Runnable) {
            if st.failure.is_some() {
                drop(st);
                panic!("loom-shim: halting thread {me} after model failure");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Park until the scheduler grants this thread the token for the
    /// first time.
    pub(crate) fn wait_for_token(&self, me: usize) {
        let mut st = lock_state(&self.st);
        while !(st.active == me && st.threads[me].run == Run::Runnable) {
            if st.failure.is_some() {
                drop(st);
                panic!("loom-shim: halting thread {me} after model failure");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain (non-blocking) choice point: any enabled thread may run
    /// next, including the caller.
    pub(crate) fn point(&self, me: usize) {
        let mut st = lock_state(&self.st);
        if st.failure.is_some() {
            drop(st);
            panic!("loom-shim: halting thread {me} after model failure");
        }
        let Some(chosen) = self.decide(&mut st, me) else {
            drop(st);
            panic!("loom-shim: model failure (see driver diagnostic)");
        };
        self.transfer(st, me, chosen, true);
    }

    /// A voluntary descheduling point ([`crate::thread::yield_now`]):
    /// the token goes to another runnable thread when one exists, so a
    /// yield-based spin loop cannot monopolize the schedule (the
    /// default stay-on-me policy would otherwise spin it straight into
    /// the livelock bound).
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = lock_state(&self.st);
        if st.failure.is_some() {
            drop(st);
            panic!("loom-shim: halting thread {me} after model failure");
        }
        let Some(chosen) = self.decide_at(&mut st, me, true) else {
            drop(st);
            panic!("loom-shim: model failure (see driver diagnostic)");
        };
        self.transfer(st, me, chosen, true);
    }

    /// Acquire the mutex with `key`, blocking through the scheduler if
    /// it is held. A choice point both before the attempt and at every
    /// contended retry.
    pub(crate) fn acquire(&self, me: usize, key: Key) {
        self.point(me);
        loop {
            let mut st = lock_state(&self.st);
            if st.failure.is_some() {
                drop(st);
                panic!("loom-shim: halting thread {me} after model failure");
            }
            let held = st.locks.entry(key).or_insert(false);
            if !*held {
                *held = true;
                return;
            }
            st.threads[me].run = Run::Lock(key);
            let Some(chosen) = self.decide(&mut st, me) else {
                drop(st);
                panic!("loom-shim: model failure (see driver diagnostic)");
            };
            self.transfer(st, me, chosen, true);
        }
    }

    /// Try to acquire the mutex with `key` without blocking.
    pub(crate) fn try_acquire(&self, me: usize, key: Key) -> bool {
        self.point(me);
        let mut st = lock_state(&self.st);
        let held = st.locks.entry(key).or_insert(false);
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }

    /// Release the mutex with `key` and make its waiters runnable.
    /// Not a choice point: the next instrumented op provides one.
    pub(crate) fn release(&self, me: usize, key: Key) {
        let _ = me;
        let mut st = lock_state(&self.st);
        st.locks.insert(key, false);
        for t in st.threads.iter_mut() {
            if t.run == Run::Lock(key) {
                t.run = Run::Runnable;
            }
        }
    }

    /// Atomically release `mutex_key` and block on condvar `cv_key`.
    /// Returns true if the wake came from the quiescence (timeout)
    /// rule rather than a notify. The caller re-acquires the mutex.
    pub(crate) fn cv_wait(&self, me: usize, cv_key: Key, mutex_key: Key, timed: bool) -> bool {
        let mut st = lock_state(&self.st);
        if st.failure.is_some() {
            drop(st);
            panic!("loom-shim: halting thread {me} after model failure");
        }
        st.locks.insert(mutex_key, false);
        for t in st.threads.iter_mut() {
            if t.run == Run::Lock(mutex_key) {
                t.run = Run::Runnable;
            }
        }
        st.threads[me].run = Run::Cv { cv: cv_key, timed };
        st.threads[me].timed_out = false;
        let Some(chosen) = self.decide(&mut st, me) else {
            drop(st);
            panic!("loom-shim: model failure (see driver diagnostic)");
        };
        self.transfer(st, me, chosen, true);
        let st = lock_state(&self.st);
        st.threads[me].timed_out
    }

    /// Wake one or all waiters of condvar `cv_key`. The woken threads
    /// re-acquire their mutex when scheduled. A choice point.
    pub(crate) fn notify(&self, me: usize, cv_key: Key, all: bool) {
        self.point(me);
        let mut st = lock_state(&self.st);
        for t in st.threads.iter_mut() {
            if matches!(t.run, Run::Cv { cv, .. } if cv == cv_key) {
                t.run = Run::Runnable;
                if !all {
                    break;
                }
            }
        }
    }

    /// Block until thread `target` finishes. A choice point.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        self.point(me);
        loop {
            let mut st = lock_state(&self.st);
            if st.failure.is_some() {
                // Shutting down after a model failure: report "joined"
                // so destructors (e.g. a pool drop) can complete.
                return;
            }
            if st.threads[target].run == Run::Finished {
                return;
            }
            st.threads[me].run = Run::Join(target);
            let Some(chosen) = self.decide(&mut st, me) else {
                drop(st);
                panic!("loom-shim: model failure (see driver diagnostic)");
            };
            self.transfer(st, me, chosen, true);
        }
    }

    /// Mark the calling thread finished, wake joiners, and pass the
    /// token on (without waiting for it back).
    pub(crate) fn finish(&self, me: usize) {
        let mut st = lock_state(&self.st);
        st.threads[me].run = Run::Finished;
        for t in st.threads.iter_mut() {
            if t.run == Run::Join(me) {
                t.run = Run::Runnable;
            }
        }
        if st.failure.is_some() || st.all_finished() {
            self.cv.notify_all();
            return;
        }
        let Some(chosen) = self.decide(&mut st, me) else {
            return; // failure recorded; driver reports it
        };
        self.transfer(st, me, chosen, false);
    }

    /// Driver side: wait until every model thread finished or the
    /// execution failed; returns the failure diagnostic if any.
    fn wait_done(&self) -> Option<String> {
        let mut st = lock_state(&self.st);
        while !(st.all_finished() || st.failure.is_some()) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.failure.clone()
    }

    fn take_trace(&self) -> Vec<Decision> {
        std::mem::take(&mut lock_state(&self.st).trace)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// One execution of the model closure under a forced decision prefix.
/// Returns the trace, or panics (propagating a closure panic or a
/// model failure such as a deadlock).
fn run_once(f: &Arc<dyn Fn() + Send + Sync>, forced: Vec<usize>) -> Vec<Decision> {
    let sched = Arc::new(Scheduler::new(forced));
    let root = sched.register_thread();
    debug_assert_eq!(root, 0);
    let s2 = Arc::clone(&sched);
    let f2 = Arc::clone(f);
    let handle = std::thread::Builder::new()
        .name("loom-model-0".into())
        .spawn(move || {
            set_ctx(Arc::clone(&s2), 0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f2()));
            s2.finish(0);
            clear_ctx();
            r
        })
        .unwrap_or_else(|e| panic!("loom-shim: could not spawn model thread: {e}"));
    let failure = sched.wait_done();
    if let Some(msg) = failure {
        // Parked threads were woken by `fail` and unwind on their own;
        // the diagnostic is what matters.
        panic!("loom-shim: {msg}");
    }
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(payload)) => std::panic::resume_unwind(payload),
        Err(payload) => std::panic::resume_unwind(payload),
    }
    sched.take_trace()
}

/// Find the next decision prefix to force: the deepest decision with an
/// unexplored alternative whose preemption cost fits the bound.
fn next_forced(trace: &[Decision], max_preemptions: usize) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let cost_before: usize = trace[..i].iter().filter(|d| d.preempting()).count();
        let d = &trace[i];
        for pos in d.chosen_pos + 1..d.enabled.len() {
            let extra = usize::from(d.me_enabled && d.enabled[pos] != d.me);
            if cost_before + extra <= max_preemptions {
                let mut forced: Vec<usize> = trace[..i].iter().map(|d| d.chosen_pos).collect();
                forced.push(pos);
                return Some(forced);
            }
        }
    }
    None
}

/// Explore the model closure under every schedule within the
/// preemption bound (or until the execution cap). Panics on the first
/// schedule that fails.
pub(crate) fn explore(f: Arc<dyn Fn() + Send + Sync>) {
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", DEFAULT_MAX_PREEMPTIONS);
    let max_execs = env_usize("LOOM_MAX_BRANCHES", DEFAULT_MAX_EXECUTIONS);
    let mut forced: Vec<usize> = Vec::new();
    let mut execs = 0usize;
    loop {
        execs += 1;
        let trace = run_once(&f, std::mem::take(&mut forced));
        match next_forced(&trace, max_preemptions) {
            None => break,
            Some(_) if execs >= max_execs => {
                eprintln!(
                    "loom-shim: exploration capped at {execs} executions \
                     (raise LOOM_MAX_BRANCHES to go further)"
                );
                break;
            }
            Some(nf) => forced = nf,
        }
    }
    if std::env::var_os("LOOM_LOG").is_some() {
        eprintln!("loom-shim: explored {execs} executions (preemption bound {max_preemptions})");
    }
}
