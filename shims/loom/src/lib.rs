//! Hermetic in-tree stand-in for the [`loom`](https://docs.rs/loom)
//! permutation tester, covering the API subset this workspace uses.
//!
//! The workspace builds with no registry access, so the real loom crate
//! cannot be a dependency. This shim implements the same *contract* for
//! the subset `scan-core` needs: [`model`] runs a closure many times,
//! exploring the distinct thread interleavings its sync operations
//! permit, and panics on the first schedule where an assertion fails,
//! a deadlock occurs, or the closure panics.
//!
//! See [`rt`](crate::rt) (private) for the exploration algorithm and
//! its bounds, and for the deliberate modeling differences from the
//! real loom (sequential consistency, quiescence-gated timeouts).
//!
//! The shim's own types degrade gracefully **outside** [`model`]: with
//! no active exploration they behave exactly like their `std`
//! counterparts, so code ported onto `loom` types still works when a
//! non-loom test path happens to touch it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rt;

pub mod sync;
pub mod thread;

use std::sync::Arc;

/// Exhaustively run `f` under every thread interleaving within the
/// exploration bounds, panicking on the first failing schedule.
///
/// Bounds (see `rt`): preemption bound `LOOM_MAX_PREEMPTIONS`
/// (default 2), execution cap `LOOM_MAX_BRANCHES` (default 20 000).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    rt::explore(Arc::new(f));
}
