//! Self-tests for the loom shim: the checker must *find* planted
//! concurrency bugs (or it proves nothing) and must pass correct code.

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Run a model and return the panic message of its first failing
/// schedule, if any.
fn model_failure<F: Fn() + Send + Sync + 'static>(f: F) -> Option<String> {
    let prev = std::panic::take_hook();
    // Silence the expected panic backtraces from failing schedules.
    std::panic::set_hook(Box::new(|_| {}));
    let r = catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    std::panic::set_hook(prev);
    r.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    })
}

/// The classic lost update: two threads increment with separate
/// load/store. The checker must find the interleaving where both read
/// the same value.
#[test]
fn finds_lost_update() {
    let msg = model_failure(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    let msg = msg.expect("checker failed to find the lost update");
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

/// The same increment done with a read-modify-write must pass under
/// every interleaving.
#[test]
fn passes_atomic_rmw() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

/// ABBA lock ordering: the checker must report the deadlock instead of
/// hanging.
#[test]
fn detects_abba_deadlock() {
    let msg = model_failure(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        let _ = t.join();
    });
    let msg = msg.expect("checker failed to find the ABBA deadlock");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// Mutex-protected increments are sound under every interleaving.
#[test]
fn passes_mutex_counter() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// Condvar handoff: a waiter must observe the flag no matter how the
/// notify interleaves with entering the wait.
#[test]
fn passes_condvar_handoff() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
}

/// A timed wait with no notifier in sight must "time out" under the
/// quiescence rule rather than deadlocking the model.
#[test]
fn timed_wait_times_out_at_quiescence() {
    loom::model(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (_g, res) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(res.timed_out());
    });
}

/// A panic on a spawned thread surfaces through join, and the model
/// then fails via the root's unwrap.
#[test]
fn spawned_panic_surfaces_through_join() {
    let msg = model_failure(|| {
        let t = thread::spawn(|| panic!("boom in worker"));
        t.join().unwrap();
    });
    assert!(msg.is_some(), "worker panic did not fail the model");
}

/// Three-way racing stores: final value must be one of the stored
/// values; also exercises exploration breadth (3 threads).
#[test]
fn passes_three_way_store_race() {
    loom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (1..=3)
            .map(|v| {
                let n = Arc::clone(&n);
                thread::spawn(move || n.store(v, Ordering::SeqCst))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let got = n.load(Ordering::SeqCst);
        assert!((1..=3).contains(&got));
    });
}

/// Flag + data publication through SeqCst atomics: if the reader sees
/// the flag, it must see the data (single-total-order model).
#[test]
fn passes_publication() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::SeqCst);
            f2.store(true, Ordering::SeqCst);
        });
        if flag.load(Ordering::SeqCst) {
            assert_eq!(data.load(Ordering::SeqCst), 42);
        }
        t.join().unwrap();
    });
}

/// Outside `model()`, the shim types fall back to plain std behavior.
#[test]
fn std_fallback_outside_model() {
    let m = Mutex::new(1);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);
    let n = AtomicUsize::new(5);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 5);
    let t = thread::spawn(|| 7);
    assert_eq!(t.join().unwrap(), 7);
}

/// A yield-based spin loop must terminate: `yield_now` hands the
/// token to another runnable thread, so the publisher always gets to
/// run and the spinner cannot monopolize the schedule into the
/// livelock bound (re-running a spinner with no intervening writer is
/// a pure stutter, so those schedules are redundant anyway).
#[test]
fn yield_spin_loop_terminates() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        t.join().unwrap();
    });
}
