//! Deterministic in-tree stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with numeric range /
//! tuple / `any::<T>()` strategies, [`collection::vec`], and the
//! `prop_assert*` macros. Sampling is driven by a splitmix64 PRNG
//! seeded from the test's module path and name, so every run of a given
//! test sees the same inputs and failures reproduce exactly.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case panics with the sampled values;
//! - no persistence files, forking, or timeout handling;
//! - `ProptestConfig` carries only the case count.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Per-test configuration and the deterministic RNG.

    /// Mirror of proptest's config struct; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Splitmix64 PRNG, seeded from a string (FNV-1a of the test path).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier string.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for test-input sampling.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the built-in strategies.

    use crate::test_runner::TestRng;

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy returned by [`any`]: the full value range of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The whole-domain strategy for `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // A finite double spread over a wide range; real proptest
            // samples bit patterns, but downstream code only needs
            // "diverse finite values".
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            (unit - 0.5) * 2.0e15
        }
    }

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (s as i128 + off as i128) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `elem`, length from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — same habit as the real crate.
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// Each generated test samples its arguments `cases` times from the
/// deterministic per-test RNG and runs the body once per sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg[$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg[$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg[$cfg:expr]) => {};
    (@cfg[$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { @cfg[$cfg] $($rest)* }
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i64..5, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec(0u32..7, 2..10),
            (a, b) in (0u8..4, any::<bool>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 7));
            prop_assert!(a < 4);
            let _ = b;
        }

        #[test]
        fn mut_patterns_work(mut v in crate::collection::vec(any::<u16>(), 0..5)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
